//! Findings, the stable JSON report, the committed baseline format, and
//! the ratchet comparator.
//!
//! ## The ratchet
//!
//! The baseline maps `(rule, file)` to an allowed violation count.
//! [`compare`] fails a run when any `(rule, file)` pair exceeds its
//! allowance — new violations can never land, anywhere, under any rule.
//! Counts are keyed without line numbers so unrelated edits (or a
//! function moving within its file) cannot trip CI, and a pair absent
//! from the baseline has allowance **zero**, so a brand-new file starts
//! clean by construction. Fixing a finding makes the run *better* than
//! the baseline; the comparator reports the improvement and CI stays
//! green, but regenerating via `--write-baseline` locks the better count
//! in — that is the ratchet's one-way direction.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One violation, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (`panic-unwrap`, `det-clock`, …).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human diagnostic.
    pub message: String,
}

impl Finding {
    /// Builds a finding.
    pub fn new(rule: &'static str, file: &str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message,
        }
    }
}

/// One observed lock-order edge: `from` was held while `to` was
/// acquired (directly, or transitively through `via`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// The lock already held, as `crate::field`.
    pub from: String,
    /// The lock acquired under it.
    pub to: String,
    /// Evidence location.
    pub file: String,
    /// Evidence line.
    pub line: u32,
    /// The callee carrying the acquisition for call-graph edges; empty
    /// for direct intraprocedural edges.
    pub via: String,
}

/// The structured lock-order section of the report: the documented
/// intended order plus every observed acquisition edge.
#[derive(Debug, Clone, Default)]
pub struct LockOrderSection {
    /// The workspace's documented intended acquisition order.
    pub intended: Vec<String>,
    /// Every lock discovered (declared `Mutex`/`RwLock` fields and
    /// bindings), as `crate::name`.
    pub locks: Vec<String>,
    /// Observed held→acquired edges, deduplicated, sorted.
    pub edges: Vec<LockEdge>,
}

/// A full analysis run: findings across all rules plus the lock-order
/// evidence, ready for JSON emission.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (rule, file, line).
    pub findings: Vec<Finding>,
    /// The lock model's structured output.
    pub lock_order: LockOrderSection,
    /// Files scanned (lib + other), for the report header.
    pub files_scanned: usize,
}

impl Report {
    /// Violation counts per rule, sorted by rule id.
    pub fn counts_by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        counts
    }

    /// Violation counts per `(rule, file)` — the baseline's key space.
    pub fn counts_by_rule_file(&self) -> BTreeMap<(String, String), usize> {
        let mut counts = BTreeMap::new();
        for f in &self.findings {
            *counts
                .entry((f.rule.to_string(), f.file.clone()))
                .or_insert(0) += 1;
        }
        counts
    }

    /// The machine-readable report. Key order, array order and number
    /// formatting are all deterministic, so identical trees produce
    /// byte-identical reports.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"probesim-analyze/v1\",\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        s.push_str("  \"counts\": {");
        let counts = self.counts_by_rule();
        for (i, (rule, n)) in counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    {}: {n}", quote(rule));
        }
        s.push_str(if counts.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"lock_order\": {\n    \"intended\": [");
        push_str_array(&mut s, &self.lock_order.intended);
        s.push_str("],\n    \"locks\": [");
        push_str_array(&mut s, &self.lock_order.locks);
        s.push_str("],\n    \"edges\": [");
        for (i, e) in self.lock_order.edges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n      {{\"from\": {}, \"to\": {}, \"file\": {}, \"line\": {}, \"via\": {}}}",
                quote(&e.from),
                quote(&e.to),
                quote(&e.file),
                e.line,
                quote(&e.via)
            );
        }
        s.push_str(if self.lock_order.edges.is_empty() {
            "]\n  },\n"
        } else {
            "\n    ]\n  },\n"
        });
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                quote(f.rule),
                quote(&f.file),
                f.line,
                quote(&f.message)
            );
        }
        s.push_str(if self.findings.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        s
    }

    /// The baseline capturing this run's `(rule, file)` counts.
    pub fn baseline_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"probesim-analyze-baseline/v1\",\n  \"entries\": [");
        let counts = self.counts_by_rule_file();
        for (i, ((rule, file), n)) in counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"file\": {}, \"count\": {n}}}",
                quote(rule),
                quote(file)
            );
        }
        s.push_str(if counts.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        s
    }
}

fn push_str_array(s: &mut String, items: &[String]) {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&quote(item));
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed baseline: allowed counts per `(rule, file)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Allowance per `(rule, file)`.
    pub entries: BTreeMap<(String, String), usize>,
}

/// Parses a baseline file previously written by
/// [`Report::baseline_json`]. The reader accepts any whitespace layout
/// but requires the exact schema tag — a truncated or hand-mangled
/// baseline fails loudly instead of silently gating nothing.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let mut baseline = Baseline::default();
    let mut schema_ok = false;
    p.expect_ch('{')?;
    loop {
        p.skip_ws();
        if p.peek() == Some('}') {
            break;
        }
        let key = p.string()?;
        p.expect_ch(':')?;
        match key.as_str() {
            "schema" => {
                let v = p.string()?;
                if v != "probesim-analyze-baseline/v1" {
                    return Err(format!("unsupported baseline schema {v:?}"));
                }
                schema_ok = true;
            }
            "entries" => {
                p.expect_ch('[')?;
                loop {
                    p.skip_ws();
                    if p.peek() == Some(']') {
                        p.i += 1;
                        break;
                    }
                    let (mut rule, mut file, mut count) = (None, None, None);
                    p.expect_ch('{')?;
                    loop {
                        p.skip_ws();
                        if p.peek() == Some('}') {
                            p.i += 1;
                            break;
                        }
                        let k = p.string()?;
                        p.expect_ch(':')?;
                        match k.as_str() {
                            "rule" => rule = Some(p.string()?),
                            "file" => file = Some(p.string()?),
                            "count" => count = Some(p.number()?),
                            other => return Err(format!("unknown entry key {other:?}")),
                        }
                        p.skip_comma();
                    }
                    let (rule, file, count) = (
                        rule.ok_or("entry missing rule")?,
                        file.ok_or("entry missing file")?,
                        count.ok_or("entry missing count")?,
                    );
                    baseline.entries.insert((rule, file), count);
                    p.skip_comma();
                }
            }
            other => return Err(format!("unknown baseline key {other:?}")),
        }
        p.skip_comma();
    }
    if !schema_ok {
        return Err("baseline missing schema tag".to_string());
    }
    Ok(baseline)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.b.get(self.i).map(|&c| c as char)
    }

    fn expect_ch(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.i))
        }
    }

    fn skip_comma(&mut self) {
        if self.peek() == Some(',') {
            self.i += 1;
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_ch('"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.b.get(self.i).copied().ok_or("truncated escape")?;
                    self.i += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => other as char,
                    });
                }
                c => out.push(c as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<usize, String> {
        self.skip_ws();
        let start = self.i;
        while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("expected a count at byte {start}"))
    }
}

/// One comparator verdict line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// `(rule, file)` exceeded its allowance — the lines list the
    /// finding locations so the log points straight at the new sites.
    Regression {
        /// Rule id.
        rule: String,
        /// File the count grew in.
        file: String,
        /// Allowed count.
        allowed: usize,
        /// Observed count.
        found: usize,
        /// The observed finding lines in that file.
        lines: Vec<u32>,
    },
    /// `(rule, file)` is now below its allowance — a fix landed;
    /// `--write-baseline` would lock it in.
    Improvement {
        /// Rule id.
        rule: String,
        /// File the count shrank in.
        file: String,
        /// Allowed count.
        allowed: usize,
        /// Observed count.
        found: usize,
    },
}

impl Verdict {
    /// True when this verdict must fail the gate.
    pub fn is_regression(&self) -> bool {
        matches!(self, Verdict::Regression { .. })
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Regression {
                rule,
                file,
                allowed,
                found,
                lines,
            } => {
                let lines = lines
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                write!(
                    f,
                    "REGRESSION {rule:<20} {file}: {found} violation(s), baseline allows {allowed} (lines {lines})"
                )
            }
            Verdict::Improvement {
                rule,
                file,
                allowed,
                found,
            } => write!(
                f,
                "IMPROVED   {rule:<20} {file}: {found} violation(s), baseline allowed {allowed} — run --write-baseline to ratchet down"
            ),
        }
    }
}

/// Diffs a run against the committed baseline. Regressions fail CI;
/// improvements are reported so the baseline can be ratcheted down.
pub fn compare(baseline: &Baseline, report: &Report) -> Vec<Verdict> {
    let current = report.counts_by_rule_file();
    let mut verdicts = Vec::new();
    for ((rule, file), &found) in &current {
        let allowed = baseline
            .entries
            .get(&(rule.clone(), file.clone()))
            .copied()
            .unwrap_or(0);
        if found > allowed {
            let lines = report
                .findings
                .iter()
                .filter(|f| f.rule == rule && &f.file == file)
                .map(|f| f.line)
                .collect();
            verdicts.push(Verdict::Regression {
                rule: rule.clone(),
                file: file.clone(),
                allowed,
                found,
                lines,
            });
        } else if found < allowed {
            verdicts.push(Verdict::Improvement {
                rule: rule.clone(),
                file: file.clone(),
                allowed,
                found,
            });
        }
    }
    // Entries that vanished entirely are improvements too.
    for ((rule, file), &allowed) in &baseline.entries {
        if allowed > 0 && !current.contains_key(&(rule.clone(), file.clone())) {
            verdicts.push(Verdict::Improvement {
                rule: rule.clone(),
                file: file.clone(),
                allowed,
                found: 0,
            });
        }
    }
    verdicts.sort_by(|a, b| {
        let key = |v: &Verdict| match v {
            Verdict::Regression { rule, file, .. } => (0, rule.clone(), file.clone()),
            Verdict::Improvement { rule, file, .. } => (1, rule.clone(), file.clone()),
        };
        key(a).cmp(&key(b))
    });
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(findings: Vec<Finding>) -> Report {
        Report {
            findings,
            lock_order: LockOrderSection::default(),
            files_scanned: 1,
        }
    }

    fn f(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding::new(rule, file, line, format!("{rule} at {file}:{line}"))
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let r = report(vec![
            f("panic-unwrap", "crates/a/src/lib.rs", 3),
            f("panic-unwrap", "crates/a/src/lib.rs", 9),
            f("det-clock", "crates/b/src/lib.rs", 1),
        ]);
        let text = r.baseline_json();
        let parsed = parse_baseline(&text).unwrap();
        assert_eq!(parsed.entries.len(), 2);
        assert_eq!(
            parsed.entries[&(
                "panic-unwrap".to_string(),
                "crates/a/src/lib.rs".to_string()
            )],
            2
        );
        // Stability: serializing twice is byte-identical.
        assert_eq!(text, report(r.findings.clone()).baseline_json());
    }

    #[test]
    fn parse_rejects_mangled_baselines() {
        assert!(parse_baseline("{}").is_err(), "missing schema");
        assert!(parse_baseline("{\"schema\": \"other/v9\", \"entries\": []}").is_err());
        assert!(parse_baseline("not json").is_err());
        assert!(
            parse_baseline(
                "{\"schema\": \"probesim-analyze-baseline/v1\", \"entries\": [{\"rule\": \"r\"}]}"
            )
            .is_err(),
            "entry missing fields"
        );
        // Whitespace-insensitive on the happy path.
        let ok = parse_baseline(
            "{ \"schema\" : \"probesim-analyze-baseline/v1\" , \"entries\" : [ { \"rule\" : \"r\" , \"file\" : \"f\" , \"count\" : 3 } ] }",
        )
        .unwrap();
        assert_eq!(ok.entries[&("r".to_string(), "f".to_string())], 3);
    }

    #[test]
    fn ratchet_blocks_growth_and_new_files_but_allows_fixes() {
        let old = report(vec![
            f("panic-unwrap", "a.rs", 1),
            f("panic-unwrap", "a.rs", 2),
            f("panic-macro", "b.rs", 5),
        ]);
        let baseline = parse_baseline(&old.baseline_json()).unwrap();

        // Same counts: clean.
        assert!(compare(&baseline, &old).iter().all(|v| !v.is_regression()));

        // One more unwrap in a.rs: regression with the line anchors.
        let grown = report(vec![
            f("panic-unwrap", "a.rs", 1),
            f("panic-unwrap", "a.rs", 2),
            f("panic-unwrap", "a.rs", 40),
            f("panic-macro", "b.rs", 5),
        ]);
        let verdicts = compare(&baseline, &grown);
        assert_eq!(verdicts.iter().filter(|v| v.is_regression()).count(), 1);
        assert!(matches!(
            &verdicts[0],
            Verdict::Regression { allowed: 2, found: 3, lines, .. } if lines == &vec![1, 2, 40]
        ));

        // A brand-new file has allowance zero.
        let new_file = report(vec![f("panic-unwrap", "fresh.rs", 1)]);
        assert!(compare(&baseline, &new_file).iter().any(
            |v| matches!(v, Verdict::Regression { file, allowed: 0, .. } if file == "fresh.rs")
        ));

        // Fixing shrinks: improvement, not regression.
        let fixed = report(vec![
            f("panic-unwrap", "a.rs", 1),
            f("panic-macro", "b.rs", 5),
        ]);
        let verdicts = compare(&baseline, &fixed);
        assert!(verdicts.iter().all(|v| !v.is_regression()));
        assert_eq!(verdicts.len(), 1);

        // Fixing a whole file away is an improvement too.
        let gone = report(vec![f("panic-unwrap", "a.rs", 1)]);
        let verdicts = compare(&baseline, &gone);
        assert!(verdicts
            .iter()
            .any(|v| matches!(v, Verdict::Improvement { file, found: 0, .. } if file == "b.rs")));
    }

    #[test]
    fn report_json_is_stable_and_escaped() {
        let mut r = report(vec![Finding::new(
            "det-clock",
            "crates/x/src/a.rs",
            7,
            "message with \"quotes\" and\nnewline".to_string(),
        )]);
        r.lock_order.intended = vec!["service::state".to_string()];
        r.lock_order.edges = vec![LockEdge {
            from: "service::store".to_string(),
            to: "service::published".to_string(),
            file: "crates/service/src/service.rs".to_string(),
            line: 480,
            via: String::new(),
        }];
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\\\"quotes\\\""));
        assert!(a.contains("\\n"));
        assert!(a.contains("probesim-analyze/v1"));
        assert!(a.contains("\"intended\": [\"service::state\"]"));
        assert!(a.contains("\"from\": \"service::store\""));
    }
}
