//! Hygiene: every lint suppression and every `unsafe` must say why.
//!
//! * `allow-justification` — an `#[allow(…)]` / `#![allow(…)]`
//!   attribute with no adjacent non-doc comment. The comment must end
//!   on the attribute's line (trailing) or the line above — a
//!   suppression nobody can explain is a suppression nobody can ever
//!   remove.
//! * `unsafe-justification` — an `unsafe` keyword with no adjacent
//!   non-doc comment (conventionally `// SAFETY: …` on the line
//!   above).
//!
//! Unlike the library-code analyses, hygiene runs over **every**
//! non-shim file, tests and binaries included: an unexplained `allow`
//! in a test is just as unremovable as one in the library.

use crate::report::Finding;
use crate::workspace::Workspace;

/// Runs the hygiene checks over every workspace file.
pub fn analyze(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        for attr in &file.scan.attrs {
            if attr.head() != "allow" {
                continue;
            }
            if file.scan.adjacent_comment(attr.line).is_none() {
                findings.push(Finding::new(
                    "allow-justification",
                    &file.rel_path,
                    attr.line,
                    format!(
                        "#{}[allow(…)] without an adjacent justification comment — say why the lint is wrong here",
                        if attr.inner { "!" } else { "" }
                    ),
                ));
            }
        }
        for tok in &file.scan.tokens {
            if tok.is_ident("unsafe") && file.scan.adjacent_comment(tok.line).is_none() {
                findings.push(Finding::new(
                    "unsafe-justification",
                    &file.rel_path,
                    tok.line,
                    "`unsafe` without an adjacent justification comment — document the safety argument (// SAFETY: …)".to_string(),
                ));
            }
        }
    }
    findings.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    fn check(src: &str) -> Vec<Finding> {
        analyze(&Workspace::from_sources(&[("crates/core/src/x.rs", src)]))
    }

    #[test]
    fn unjustified_allow_is_flagged_justified_is_not() {
        let f = check(
            "// the walker state is clearer flat than as a struct\n\
             #[allow(clippy::too_many_arguments)]\n\
             fn ok(a: u32, b: u32) {}\n\
             #[allow(dead_code)]\n\
             fn bad() {}\n\
             #[allow(unused)] // trailing justification works too\n\
             fn trailing() {}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "allow-justification");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn doc_comments_do_not_count_as_justification() {
        let f = check(
            "/// docs describe the item, not the suppression\n#[allow(dead_code)]\nfn f() {}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn inner_allow_at_file_top_needs_a_comment_too() {
        let bad = check("#![allow(clippy::print_stdout)]\nfn f() {}\n");
        assert_eq!(bad.len(), 1);
        let good = check(
            "// a CLI: printing is the interface\n#![allow(clippy::print_stdout)]\nfn f() {}\n",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn unsafe_needs_a_safety_comment() {
        let bad = check("fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "unsafe-justification");
        let good = check(
            "fn f(p: *const u8) -> u8 {\n\
                 // SAFETY: caller guarantees p is valid for reads\n\
                 unsafe { *p }\n\
             }\n",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn hygiene_applies_inside_test_code() {
        let f = check("#[cfg(test)]\nmod tests {\n  #[allow(dead_code)]\n  fn helper() {}\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
    }
}
