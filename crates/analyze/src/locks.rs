//! Lock discipline: an intraprocedural lock-acquisition model plus a
//! conservative call graph, checking acquisition order, cycles, and
//! guards held across blocking calls.
//!
//! ## Model
//!
//! Locks are identified by `crate::field` — every `name: Mutex<…>`,
//! `name: RwLock<…>` or `name: Condvar` declaration in library code
//! declares a lock named `name` in its crate. An **acquisition** is a
//! `.lock()` / `.read()` / `.write()` call whose receiver's final path
//! segment matches a lock declared in the same crate; this crate-local
//! matching is what keeps `service::published` (the `RwLock` snapshot
//! the workers read) distinct from `graph::published` (the store's
//! `Mutex` snapshot cache) even though the fields share a name.
//!
//! Within one function body the simulation tracks a held set: guards
//! bound by `let` live until their enclosing block closes or a
//! `drop(binding)` releases them; guards created as expression
//! temporaries die at the end of their statement. Each acquisition made
//! while other locks are held records a `held → acquired` edge. A
//! conservative call graph (bare-name matching, lock summaries iterated
//! to a fixpoint) extends the edges across calls: holding `store` while
//! calling a function that somewhere acquires `published` records
//! `store → published` with the callee as evidence.
//!
//! ## Rules
//!
//! * `lock-cycle` — the merged edge graph has a strongly connected
//!   component: some interleaving can deadlock.
//! * `lock-inversion` — an edge contradicts the documented intended
//!   order ([`INTENDED_LOCK_ORDER`]).
//! * `lock-blocking` — a guard is held across `join`/`recv`/
//!   `thread::sleep`, or across a `Condvar` wait on a *different* lock
//!   (waiting on the guard you pass is the point of a condvar and is
//!   not flagged).
//! * `lock-recursive` — a function re-acquires a lock it already holds
//!   on the same path: guaranteed self-deadlock with `std::sync`.
//!
//! ## Known limits
//!
//! Bare-name call-graph merging conflates same-named methods across
//! types, so (a) summary-derived *self* edges are suppressed — common
//! names like `apply` or `len` would otherwise claim every lock flows
//! into itself — (b) ubiquitous std-shaped method names
//! ([`PROPAGATION_STOPLIST`]) do not propagate summaries at all: a
//! workspace `fn get` that locks the cache would otherwise taint every
//! `HashMap::get` call in the tree — and (c) `lock-recursive` only
//! fires on direct re-acquisition inside one body, never through the
//! call graph. The stoplist also means a *real* lock hidden behind one
//! of those generic names is missed; workspace-specific names (`apply`,
//! `snapshot`, `submit`, `resolve`, …) propagate normally. Closure
//! indirection (observer callbacks) is invisible to the call graph;
//! edges through it must be documented rather than inferred.

use std::collections::{BTreeMap, BTreeSet};

use crate::report::{Finding, LockEdge, LockOrderSection, Report};
use crate::scan::FileScan;
use crate::workspace::{SourceFile, Workspace};

/// The workspace's documented intended acquisition order, outermost
/// first. `fleet::records` heads the chain: the fleet's write path
/// appends to the update log and commits to the primary store in one
/// critical section (via the `append_with` closure, which the call
/// graph cannot see — the edge is documented here instead of inferred).
/// `fleet::registry`, `fleet::seat`, `fleet::checkpoint` and
/// `graph::published` are leaves (acquired alone, never held across
/// another acquisition): the registry mutex exists only to pair its
/// condvar, replica incarnations are built and joined entirely outside
/// the seat lock, and checkpoints are cloned in and out of the cell
/// with nothing else held. `service::index` is the innermost lock: the
/// commit path touches it from inside `GraphStore::mutate` via the
/// mutation-observer closure (an edge the call graph cannot see —
/// documented here instead of inferred), and every other use pops,
/// replays, or installs a row in its own short critical section with
/// the probe work done unlocked in between.
pub const INTENDED_LOCK_ORDER: [&str; 9] = [
    "fleet::registry",
    "fleet::records",
    "fleet::seat",
    "fleet::checkpoint",
    "service::state",
    "service::store",
    "service::inner",
    "service::published",
    "service::index",
];

/// What flavour of synchronisation primitive a declaration is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockKind {
    Mutex,
    RwLock,
    Condvar,
}

/// The blocking calls the model knows about.
const BLOCKING: [&str; 7] = [
    "join",
    "recv",
    "recv_timeout",
    "sleep",
    "wait",
    "wait_timeout",
    "wait_while",
];

fn is_wait_family(name: &str) -> bool {
    matches!(name, "wait" | "wait_timeout" | "wait_while")
}

/// Method names that never carry lock summaries through the call
/// graph. These are std container/Option/Result vocabulary; a
/// same-named workspace method (the cache's `get`, the service's
/// `drain`) would otherwise taint every collection call in the tree
/// with its locks and flood the edge graph with false inversions.
pub const PROPAGATION_STOPLIST: [&str; 40] = [
    "expect",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "map",
    "map_err",
    "and_then",
    "filter",
    "copied",
    "cloned",
    "collect",
    "clone",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "insert",
    "remove",
    "push",
    "pop",
    "push_front",
    "push_back",
    "clear",
    "contains",
    "contains_key",
    "drain",
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "next",
    "peek",
    "new",
    "default",
    "version",
    "drop",
];

/// A currently-held guard during simulation.
#[derive(Debug, Clone)]
struct Guard {
    lock: String,
    binding: Option<String>,
    depth: i32,
}

/// The result of the lock analysis: findings plus the structured
/// lock-order report section.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    /// `lock-*` findings.
    pub findings: Vec<Finding>,
    /// Intended order, discovered locks, observed edges.
    pub section: LockOrderSection,
}

/// Runs the lock-discipline analysis over the workspace's library files
/// against the given intended order.
pub fn analyze(ws: &Workspace, intended: &[&str]) -> LockAnalysis {
    let decls = collect_decls(ws);

    // Pass 1: per-function direct acquisitions and callees, merged by
    // bare name across the whole workspace.
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for file in ws.lib_files() {
        for f in &file.scan.fns {
            let Some((open, close)) = f.body else {
                continue;
            };
            if file.scan.excluded.get(open).copied().unwrap_or(false) {
                continue;
            }
            let (acqs, callees) = survey_body(file, &decls, open, close);
            direct.entry(f.name.clone()).or_default().extend(acqs);
            calls.entry(f.name.clone()).or_default().extend(callees);
        }
    }
    // Only calls to functions we know about participate, and generic
    // std-shaped names never carry summaries (see module docs).
    let known: BTreeSet<String> = direct.keys().cloned().collect();
    for callees in calls.values_mut() {
        callees.retain(|c| known.contains(c) && !PROPAGATION_STOPLIST.contains(&c.as_str()));
    }

    // Fixpoint: summary(f) = direct(f) ∪ ⋃ summary(callee).
    let mut summary = direct.clone();
    loop {
        let mut changed = false;
        for (name, callees) in &calls {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for c in callees {
                if let Some(s) = summary.get(c) {
                    add.extend(s.iter().cloned());
                }
            }
            let own = summary.entry(name.clone()).or_default();
            for l in add {
                changed |= own.insert(l);
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 2: full simulation with held-set tracking.
    let mut findings = Vec::new();
    let mut edges: BTreeMap<(String, String, String), (String, u32)> = BTreeMap::new();
    for file in ws.lib_files() {
        for f in &file.scan.fns {
            let Some((open, close)) = f.body else {
                continue;
            };
            if file.scan.excluded.get(open).copied().unwrap_or(false) {
                continue;
            }
            simulate_body(
                file,
                &decls,
                &summary,
                open,
                close,
                &mut findings,
                &mut edges,
            );
        }
    }

    let edge_list: Vec<LockEdge> = edges
        .iter()
        .map(|((from, to, via), (file, line))| LockEdge {
            from: from.clone(),
            to: to.clone(),
            file: file.clone(),
            line: *line,
            via: via.clone(),
        })
        .collect();

    // Cycles: any strongly connected component of size > 1 in the
    // deduplicated from→to graph.
    findings.extend(cycle_findings(&edge_list));

    // Inversions against the intended order.
    for e in &edge_list {
        let from_pos = intended.iter().position(|l| *l == e.from);
        let to_pos = intended.iter().position(|l| *l == e.to);
        if let (Some(fp), Some(tp)) = (from_pos, to_pos) {
            if fp > tp {
                findings.push(Finding::new(
                    "lock-inversion",
                    &e.file,
                    e.line,
                    format!(
                        "{} acquired while holding {}{} — contradicts the intended order {}",
                        e.to,
                        e.from,
                        if e.via.is_empty() {
                            String::new()
                        } else {
                            format!(" (via call to `{}`)", e.via)
                        },
                        intended.join(" -> ")
                    ),
                ));
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.message).cmp(&(b.rule, &b.file, b.line, &b.message))
    });

    let mut sorted_edges = edge_list;
    sorted_edges.sort();
    LockAnalysis {
        findings,
        section: LockOrderSection {
            intended: intended.iter().map(|s| s.to_string()).collect(),
            locks: decls.keys().cloned().collect(),
            edges: sorted_edges,
        },
    }
}

/// Finds every `name: Mutex<…>` / `RwLock<…>` / `Condvar` declaration
/// in library code, keyed `crate::name`.
fn collect_decls(ws: &Workspace) -> BTreeMap<String, LockKind> {
    let mut decls = BTreeMap::new();
    for file in ws.lib_files() {
        let toks = &file.scan.tokens;
        for i in 0..toks.len() {
            if file.scan.excluded.get(i).copied().unwrap_or(false) {
                continue;
            }
            if toks[i].kind != crate::lexer::TokKind::Ident
                || !toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                || toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                continue;
            }
            // Look a short distance into the type for the primitive.
            // `Arc<Mutex<…>>` and `std::sync::Mutex<…>` both fit well
            // inside the window; `,`/`;`/`=`/`{` end the declaration.
            let mut kind = None;
            for j in (i + 2)..(i + 14).min(toks.len()) {
                let t = &toks[j];
                if t.is_punct(',') || t.is_punct(';') || t.is_punct('=') || t.is_punct('{') {
                    break;
                }
                if t.is_ident("Condvar") {
                    kind = Some(LockKind::Condvar);
                    break;
                }
                if (t.is_ident("Mutex") || t.is_ident("RwLock"))
                    && toks.get(j + 1).is_some_and(|n| n.is_punct('<'))
                {
                    kind = Some(if t.is_ident("Mutex") {
                        LockKind::Mutex
                    } else {
                        LockKind::RwLock
                    });
                    break;
                }
            }
            if let Some(kind) = kind {
                decls.insert(format!("{}::{}", file.crate_name, toks[i].text), kind);
            }
        }
    }
    decls
}

/// Resolves the receiver of the method call at `dot` (the `.` token):
/// the identifier immediately before it, looking through one trailing
/// index expression (`slots[i].lock()`). Returns `None` for chained
/// call receivers (`f().lock()`), which the model does not track.
fn receiver_name(scan: &FileScan, dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let mut i = dot - 1;
    if scan.tokens[i].is_punct(']') {
        // Walk back over the index group to the ident before `[`.
        let mut depth = 0i32;
        loop {
            if scan.tokens[i].is_punct(']') {
                depth += 1;
            } else if scan.tokens[i].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if i == 0 {
                return None;
            }
            i -= 1;
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
    let t = &scan.tokens[i];
    (t.kind == crate::lexer::TokKind::Ident).then(|| t.text.clone())
}

/// Is token `i` an acquisition (`.lock()` / `.read()` / `.write()`) of
/// a declared same-crate lock? Returns the lock id.
fn acquisition_at(
    file: &SourceFile,
    decls: &BTreeMap<String, LockKind>,
    i: usize,
) -> Option<String> {
    let toks = &file.scan.tokens;
    let t = &toks[i];
    if !(t.is_ident("lock") || t.is_ident("read") || t.is_ident("write")) {
        return None;
    }
    if i == 0 || !toks[i - 1].is_punct('.') || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
        return None;
    }
    let recv = receiver_name(&file.scan, i - 1)?;
    let id = format!("{}::{recv}", file.crate_name);
    match decls.get(&id) {
        // `read`/`write` on a Mutex or `lock` on a RwLock would be a
        // type error in compiled code; accept any of the three on
        // either kind, but never treat a Condvar as acquirable.
        Some(LockKind::Mutex | LockKind::RwLock) => Some(id),
        _ => None,
    }
}

/// Pass 1: the body's direct acquisitions and outgoing calls.
fn survey_body(
    file: &SourceFile,
    decls: &BTreeMap<String, LockKind>,
    open: usize,
    close: usize,
) -> (BTreeSet<String>, BTreeSet<String>) {
    let toks = &file.scan.tokens;
    let mut acqs = BTreeSet::new();
    let mut callees = BTreeSet::new();
    for i in (open + 1)..close {
        if let Some(id) = acquisition_at(file, decls, i) {
            acqs.insert(id);
            continue;
        }
        let t = &toks[i];
        if t.kind == crate::lexer::TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !BLOCKING.contains(&t.text.as_str())
        {
            callees.insert(t.text.clone());
        }
    }
    (acqs, callees)
}

/// Pass 2: held-set simulation over one body, producing findings and
/// edges.
#[allow(clippy::too_many_arguments)] // internal walker; splitting the state into a struct would obscure the token loop
fn simulate_body(
    file: &SourceFile,
    decls: &BTreeMap<String, LockKind>,
    summary: &BTreeMap<String, BTreeSet<String>>,
    open: usize,
    close: usize,
    findings: &mut Vec<Finding>,
    edges: &mut BTreeMap<(String, String, String), (String, u32)>,
) {
    let toks = &file.scan.tokens;
    let mut held: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;
    let mut pending_let: Option<String> = None;

    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            held.retain(|g| g.depth < depth);
            depth -= 1;
        } else if t.is_punct(';') {
            // Expression-temporary guards die at the end of their
            // statement; `let` statements are complete here too.
            held.retain(|g| g.binding.is_some());
            pending_let = None;
        } else if t.is_ident("let") {
            pending_let = let_binding_name(toks, i, close);
        } else if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == crate::lexer::TokKind::Ident)
        {
            let name = toks[i + 2].text.clone();
            held.retain(|g| g.binding.as_deref() != Some(name.as_str()));
        } else if let Some(id) = acquisition_at(file, decls, i) {
            for g in &held {
                if g.lock == id {
                    findings.push(Finding::new(
                        "lock-recursive",
                        &file.rel_path,
                        t.line,
                        format!(
                            "{id} re-acquired while already held — self-deadlock with std::sync"
                        ),
                    ));
                } else {
                    edges
                        .entry((g.lock.clone(), id.clone(), String::new()))
                        .or_insert((file.rel_path.clone(), t.line));
                }
            }
            held.push(Guard {
                lock: id,
                binding: pending_let.clone(),
                depth,
            });
        } else if t.kind == crate::lexer::TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let name = t.text.as_str();
            if BLOCKING.contains(&name)
                && (i > open + 1 && toks[i - 1].is_punct('.') || is_path_call(toks, i))
            {
                // A condvar wait releases the guard you pass it — only
                // the *other* held locks are held across the block.
                let excluded = if is_wait_family(name) {
                    toks.get(i + 2)
                        .filter(|a| a.kind == crate::lexer::TokKind::Ident)
                        .map(|a| a.text.clone())
                } else {
                    None
                };
                let held_over: Vec<&Guard> = held
                    .iter()
                    .filter(|g| g.binding != excluded || excluded.is_none())
                    .collect();
                if !held_over.is_empty() {
                    let locks: Vec<&str> = held_over.iter().map(|g| g.lock.as_str()).collect();
                    findings.push(Finding::new(
                        "lock-blocking",
                        &file.rel_path,
                        t.line,
                        format!(
                            "`{name}` called while holding {} — guard held across a blocking call",
                            locks.join(", ")
                        ),
                    ));
                }
            } else if !held.is_empty() && !PROPAGATION_STOPLIST.contains(&name) {
                if let Some(callee_locks) = summary.get(name) {
                    for l in callee_locks {
                        for g in &held {
                            // Self edges from bare-name merging are
                            // noise (see module docs) — skip them.
                            if &g.lock != l {
                                edges
                                    .entry((g.lock.clone(), l.clone(), name.to_string()))
                                    .or_insert((file.rel_path.clone(), t.line));
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// Is the call at `i` written as a path call (`thread::sleep(…)`)?
fn is_path_call(toks: &[crate::lexer::Tok], i: usize) -> bool {
    i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':')
}

/// The binding name of the `let` at token `i`: the first identifier in
/// the pattern that is not `mut` or a constructor wrapper
/// (`let mut st = …` → `st`, `let Ok(g) = …` → `g`).
fn let_binding_name(toks: &[crate::lexer::Tok], i: usize, close: usize) -> Option<String> {
    for t in toks.iter().take(close.min(i + 10)).skip(i + 1) {
        if t.is_punct('=') || t.is_punct(';') || t.is_punct(':') {
            return None;
        }
        if t.kind == crate::lexer::TokKind::Ident
            && !matches!(t.text.as_str(), "mut" | "Ok" | "Some" | "Err")
        {
            return Some(t.text.clone());
        }
        // A `let NAME: Type = …` annotation: accept the name before
        // bailing at `:` — handled by ident-first ordering above.
    }
    None
}

/// One `lock-cycle` finding per strongly connected component of size
/// > 1 in the edge graph.
fn cycle_findings(edges: &[LockEdge]) -> Vec<Finding> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        nodes.insert(&e.from);
        nodes.insert(&e.to);
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    // Tarjan's algorithm, iterative to keep recursion off arbitrarily
    // shaped graphs.
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let names: Vec<&str> = nodes.into_iter().collect();
    let n = names.len();
    let succ: Vec<Vec<usize>> = names
        .iter()
        .map(|name| {
            adj.get(name)
                .map(|s| s.iter().map(|t| index_of[t]).collect())
                .unwrap_or_default()
        })
        .collect();
    let (mut index, mut low, mut on_stack) = (vec![usize::MAX; n], vec![0usize; n], vec![false; n]);
    let (mut stack, mut next_index) = (Vec::new(), 0usize);
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // (node, next-successor position)
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *pos < succ[v].len() {
                let w = succ[v][*pos];
                *pos += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack
                            .pop()
                            .expect("invariant: Tarjan stack holds the component");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() > 1 {
                        sccs.push(comp);
                    }
                }
                call.pop();
                if let Some(&mut (u, _)) = call.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    let mut findings = Vec::new();
    for mut comp in sccs {
        comp.sort_unstable();
        let cycle: Vec<&str> = comp.iter().map(|&i| names[i]).collect();
        // Anchor the finding at the evidence of some edge inside the
        // component.
        let anchor = edges
            .iter()
            .find(|e| cycle.contains(&e.from.as_str()) && cycle.contains(&e.to.as_str()));
        let (file, line) = anchor.map_or(("", 0), |e| (e.file.as_str(), e.line));
        findings.push(Finding::new(
            "lock-cycle",
            file,
            line,
            format!(
                "lock-order cycle between {} — opposite acquisition orders can deadlock",
                cycle.join(", ")
            ),
        ));
    }
    findings
}

/// Convenience: run the lock analysis and fold it into a report.
pub fn run_into(ws: &Workspace, report: &mut Report) {
    let analysis = analyze(ws, &INTENDED_LOCK_ORDER);
    report.findings.extend(analysis.findings);
    report.lock_order = analysis.section;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service_fixture(body: &str) -> Workspace {
        let src = format!(
            "use std::sync::{{Mutex, RwLock, Condvar}};\n\
             struct S {{ state: Mutex<u32>, store: Mutex<u32>, inner: Mutex<u32>, published: RwLock<u32>, queue_cv: Condvar }}\n\
             impl S {{\n{body}\n}}\n"
        );
        Workspace::from_sources(&[("crates/service/src/lib.rs", &src)])
    }

    #[test]
    fn declarations_are_crate_qualified() {
        let ws = Workspace::from_sources(&[
            (
                "crates/service/src/lib.rs",
                "use std::sync::RwLock; struct A { published: RwLock<u32> }",
            ),
            (
                "crates/graph/src/lib.rs",
                "use std::sync::Mutex; struct B { published: std::sync::Mutex<Option<u32>> }",
            ),
        ]);
        let decls = collect_decls(&ws);
        assert_eq!(decls.get("service::published"), Some(&LockKind::RwLock));
        assert_eq!(decls.get("graph::published"), Some(&LockKind::Mutex));
    }

    #[test]
    fn in_order_acquisition_produces_edges_but_no_findings() {
        let ws = service_fixture(
            "fn ok(&self) {\n\
                 let st = self.state.lock().expect(\"poisoned\");\n\
                 let g = self.store.lock().expect(\"poisoned\");\n\
                 drop(g);\n\
                 drop(st);\n\
             }",
        );
        let a = analyze(&ws, &INTENDED_LOCK_ORDER);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert!(a
            .section
            .edges
            .iter()
            .any(|e| e.from == "service::state" && e.to == "service::store"));
    }

    #[test]
    fn artificial_inversion_is_flagged_as_inversion_and_cycle() {
        // The regression fixture the satellite demands: two functions
        // acquiring `state`/`store` in opposite orders. The inversion
        // contradicts the intended order AND forms a cycle.
        let ws = service_fixture(
            "fn forward(&self) {\n\
                 let a = self.state.lock().expect(\"poisoned\");\n\
                 let b = self.store.lock().expect(\"poisoned\");\n\
                 let _ = (&a, &b);\n\
             }\n\
             fn backward(&self) {\n\
                 let b = self.store.lock().expect(\"poisoned\");\n\
                 let a = self.state.lock().expect(\"poisoned\");\n\
                 let _ = (&a, &b);\n\
             }",
        );
        let a = analyze(&ws, &INTENDED_LOCK_ORDER);
        assert!(
            a.findings.iter().any(|f| f.rule == "lock-inversion"
                && f.message.contains("service::state")
                && f.message.contains("service::store")),
            "{:?}",
            a.findings
        );
        assert!(
            a.findings.iter().any(|f| f.rule == "lock-cycle"),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn inversion_through_the_call_graph_is_flagged() {
        let ws = service_fixture(
            "fn helper_locks_state(&self) {\n\
                 let a = self.state.lock().expect(\"poisoned\");\n\
                 let _ = &a;\n\
             }\n\
             fn outer(&self) {\n\
                 let b = self.store.lock().expect(\"poisoned\");\n\
                 self.helper_locks_state();\n\
                 drop(b);\n\
             }",
        );
        let a = analyze(&ws, &INTENDED_LOCK_ORDER);
        let inv: Vec<_> = a
            .findings
            .iter()
            .filter(|f| f.rule == "lock-inversion")
            .collect();
        assert_eq!(inv.len(), 1, "{:?}", a.findings);
        assert!(inv[0].message.contains("helper_locks_state"));
    }

    #[test]
    fn condvar_wait_on_own_guard_is_fine_but_other_locks_are_not() {
        let ws = service_fixture(
            "fn worker(&self) {\n\
                 let mut st = self.state.lock().expect(\"poisoned\");\n\
                 st = self.queue_cv.wait(st).expect(\"poisoned\");\n\
                 let _ = &st;\n\
             }\n\
             fn bad(&self) {\n\
                 let g = self.store.lock().expect(\"poisoned\");\n\
                 let mut st = self.state.lock().expect(\"poisoned\");\n\
                 st = self.queue_cv.wait(st).expect(\"poisoned\");\n\
                 let _ = (&g, &st);\n\
             }",
        );
        let a = analyze(&ws, &INTENDED_LOCK_ORDER);
        let blocking: Vec<_> = a
            .findings
            .iter()
            .filter(|f| f.rule == "lock-blocking")
            .collect();
        assert_eq!(blocking.len(), 1, "{:?}", a.findings);
        assert!(blocking[0].message.contains("service::store"));
        assert!(!blocking[0].message.contains("service::state"));
    }

    #[test]
    fn sleep_and_join_under_a_guard_are_blocking() {
        let ws = service_fixture(
            "fn snoozes(&self) {\n\
                 let g = self.inner.lock().expect(\"poisoned\");\n\
                 std::thread::sleep(std::time::Duration::from_millis(1));\n\
                 drop(g);\n\
             }",
        );
        let a = analyze(&ws, &INTENDED_LOCK_ORDER);
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == "lock-blocking" && f.message.contains("sleep")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn direct_reacquisition_is_recursive() {
        let ws = service_fixture(
            "fn oops(&self) {\n\
                 let a = self.state.lock().expect(\"poisoned\");\n\
                 let b = self.state.lock().expect(\"poisoned\");\n\
                 let _ = (&a, &b);\n\
             }",
        );
        let a = analyze(&ws, &INTENDED_LOCK_ORDER);
        assert!(
            a.findings.iter().any(|f| f.rule == "lock-recursive"),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn temporaries_release_at_statement_end_and_blocks_scope_guards() {
        let ws = service_fixture(
            "fn temp(&self) {\n\
                 *self.state.lock().expect(\"poisoned\") = 1;\n\
                 let b = self.store.lock().expect(\"poisoned\");\n\
                 let _ = &b;\n\
             }\n\
             fn scoped(&self) {\n\
                 { let a = self.store.lock().expect(\"poisoned\"); let _ = &a; }\n\
                 let b = self.state.lock().expect(\"poisoned\");\n\
                 let _ = &b;\n\
             }",
        );
        let a = analyze(&ws, &INTENDED_LOCK_ORDER);
        // Neither function ever holds two locks at once: no edges
        // between state and store in either direction, no findings.
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert!(a.section.edges.is_empty(), "{:?}", a.section.edges);
    }

    #[test]
    fn test_code_is_invisible_to_the_lock_model() {
        let ws = service_fixture(
            "fn fine(&self) { let a = self.state.lock().expect(\"poisoned\"); let _ = &a; }\n\
             #[cfg(test)]\n\
             fn scrambled(&self) {\n\
                 let b = self.store.lock().unwrap();\n\
                 let a = self.state.lock().unwrap();\n\
                 let _ = (&a, &b);\n\
             }",
        );
        let a = analyze(&ws, &INTENDED_LOCK_ORDER);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }
}
