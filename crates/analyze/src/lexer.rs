//! A comment/string/char-literal-aware Rust tokenizer.
//!
//! The analyses in this crate never need full parsing — they pattern-match
//! over token streams — but they *do* need to never mistake the contents
//! of a string literal, a comment, or a char literal for code (a doc
//! example calling `.unwrap()` must not count against the panic-surface
//! ratchet). This lexer handles exactly the constructs that make naive
//! regex scanning wrong:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * string literals with escapes, byte strings, and raw strings with an
//!   arbitrary number of `#` guards (`r#"…"#`, `br##"…"##`),
//! * the `'a` lifetime vs `'a'` char-literal ambiguity (including
//!   escaped chars like `'\''` and `'\u{1F600}'`),
//! * numeric literals with fractional parts and signed exponents, so a
//!   range like `0..10` still lexes as two numbers and two dots.
//!
//! Comments are returned out-of-band (the token stream holds only code)
//! because the hygiene analysis needs comment *adjacency*, not comment
//! tokens interleaved with code.

/// What a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `state`, `Mutex`, …).
    Ident,
    /// A lifetime (`'a`, `'static`), without the quote in [`Tok::text`].
    Lifetime,
    /// A numeric literal, suffix included (`42`, `1.0e-9`, `7u64`).
    Num,
    /// A string/byte-string literal; [`Tok::text`] is the *contents*
    /// (escapes unprocessed), not the quoted source form.
    Str,
    /// A char or byte-char literal; [`Tok::text`] is the raw contents.
    Char,
    /// A single punctuation character (`.`, `:`, `{`, …). Multi-char
    /// operators are emitted as consecutive single-char tokens.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what each class stores).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True when this is an identifier with exactly the text `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// One comment, with the line range it spans and its raw text
/// (delimiters included, so `///` doc comments are distinguishable).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line (equal to [`Comment::line`] for line comments).
    pub end_line: u32,
    /// Raw source text, `//`/`/*` delimiters included.
    pub text: String,
}

impl Comment {
    /// True for `///`, `//!`, `/**` and `/*!` doc comments — these
    /// document an *item*, so hygiene does not accept them as the
    /// adjacent justification for an `#[allow]` or an `unsafe` block.
    pub fn is_doc(&self) -> bool {
        self.text.starts_with("///")
            || self.text.starts_with("//!")
            || self.text.starts_with("/**")
            || self.text.starts_with("/*!")
    }
}

/// A lexed source file: the code token stream plus out-of-band comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. Unterminated constructs (a string cut off by EOF)
/// are closed at end of input rather than reported — the analyses run on
/// code that already compiles, so recovery beats diagnostics here.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let (mut i, mut line) = (0usize, 1u32);
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                end_line: line,
                text: src[start..i].to_string(),
            });
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let (start, start_line) = (i, line);
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text: src[start..i].to_string(),
            });
        } else if is_raw_string_start(b, i) {
            let skip = if c == b'b' { 2 } else { 1 };
            i = lex_raw_string(src, i + skip, line, &mut out, &mut line);
        } else if c == b'b' && b.get(i + 1) == Some(&b'"') {
            i = lex_string(src, i + 1, line, &mut out, &mut line);
        } else if c == b'b' && b.get(i + 1) == Some(&b'\'') {
            i = lex_char(src, i + 1, line, &mut out);
        } else if c == b'"' {
            i = lex_string(src, i, line, &mut out, &mut line);
        } else if c == b'\'' {
            i = lex_char_or_lifetime(src, i, line, &mut out);
        } else if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text: src[start..i].to_string(),
                line,
            });
        } else if c.is_ascii_digit() {
            i = lex_number(src, i, line, &mut out);
        } else {
            out.tokens.push(Tok {
                kind: TokKind::Punct,
                text: (c as char).to_string(),
                line,
            });
            i += 1;
        }
    }
    out
}

/// `r"…"`, `r#"…"#`, `br##"…"##` — a raw-string opener at `i`?
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let after = match b[i] {
        b'r' => i + 1,
        b'b' if b.get(i + 1) == Some(&b'r') => i + 2,
        _ => return false,
    };
    let mut j = after;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

/// Lexes a raw string; `i` points at the first `#` or the `"`.
fn lex_raw_string(
    src: &str,
    mut i: usize,
    start_line: u32,
    out: &mut Lexed,
    line: &mut u32,
) -> usize {
    let b = src.as_bytes();
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    let start = i;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
        {
            break;
        } else {
            i += 1;
        }
    }
    out.tokens.push(Tok {
        kind: TokKind::Str,
        text: src[start..i.min(src.len())].to_string(),
        line: start_line,
    });
    (i + 1 + hashes).min(b.len())
}

/// Lexes a `"…"` string with escapes; `i` points at the opening quote.
fn lex_string(src: &str, mut i: usize, start_line: u32, out: &mut Lexed, line: &mut u32) -> usize {
    let b = src.as_bytes();
    i += 1;
    let start = i;
    while i < b.len() && b[i] != b'"' {
        if b[i] == b'\\' {
            i += 2;
        } else {
            if b[i] == b'\n' {
                *line += 1;
            }
            i += 1;
        }
    }
    out.tokens.push(Tok {
        kind: TokKind::Str,
        text: src[start..i.min(src.len())].to_string(),
        line: start_line,
    });
    (i + 1).min(b.len())
}

/// Lexes a char literal; `i` points at the opening quote.
fn lex_char(src: &str, mut i: usize, line: u32, out: &mut Lexed) -> usize {
    let b = src.as_bytes();
    i += 1;
    let start = i;
    while i < b.len() && b[i] != b'\'' {
        if b[i] == b'\\' {
            i += 2;
        } else {
            i += 1;
        }
    }
    out.tokens.push(Tok {
        kind: TokKind::Char,
        text: src[start..i.min(src.len())].to_string(),
        line,
    });
    (i + 1).min(b.len())
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) at a `'`:
/// ident-start + no closing quote right after means lifetime.
fn lex_char_or_lifetime(src: &str, i: usize, line: u32, out: &mut Lexed) -> usize {
    let b = src.as_bytes();
    let next = b.get(i + 1).copied().unwrap_or(0);
    if next.is_ascii_alphabetic() || next == b'_' {
        // 'a' is a char only if the very next char closes it ('a'),
        // otherwise it is a lifetime ('a, 'static, 'de>).
        if b.get(i + 2) != Some(&b'\'') {
            let start = i + 1;
            let mut j = start;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Lifetime,
                text: src[start..j].to_string(),
                line,
            });
            return j;
        }
    }
    lex_char(src, i, line, out)
}

/// Lexes a numeric literal (int, float, exponent, suffix) at `i`.
fn lex_number(src: &str, i: usize, line: u32, out: &mut Lexed) -> usize {
    let b = src.as_bytes();
    let start = i;
    let mut j = i;
    let consume_digits = |j: &mut usize| {
        while *j < b.len() {
            let c = b[*j];
            if c.is_ascii_alphanumeric() || c == b'_' {
                *j += 1;
                // `1e-9`: a sign directly after an exponent marker
                // belongs to the literal (hex literals have no exponent
                // and `e`/`E` there is just a digit — a following sign
                // would not parse as Rust anyway).
                if (c == b'e' || c == b'E')
                    && !src[start..*j].starts_with("0x")
                    && matches!(b.get(*j), Some(b'+') | Some(b'-'))
                    && b.get(*j + 1).is_some_and(u8::is_ascii_digit)
                {
                    *j += 1;
                }
            } else {
                break;
            }
        }
    };
    consume_digits(&mut j);
    // A fractional part only if `.` is followed by a digit — keeps range
    // expressions like `0..10` out of the literal.
    if b.get(j) == Some(&b'.') && b.get(j + 1).is_some_and(u8::is_ascii_digit) {
        j += 1;
        consume_digits(&mut j);
    }
    out.tokens.push(Tok {
        kind: TokKind::Num,
        text: src[start..j].to_string(),
        line,
    });
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let lexed = lex("fn main() {\n    x.lock();\n}\n");
        let lines: Vec<(String, u32)> = lexed
            .tokens
            .iter()
            .map(|t| (t.text.clone(), t.line))
            .collect();
        assert_eq!(lines[0], ("fn".to_string(), 1));
        assert_eq!(lines[5], ("x".to_string(), 2));
        assert_eq!(lines[7], ("lock".to_string(), 2));
        assert_eq!(lines.last().unwrap(), &("}".to_string(), 3));
    }

    #[test]
    fn line_and_nested_block_comments_are_out_of_band() {
        let lexed = lex("a // unwrap() in a comment\n/* outer /* inner */ still comment */ b");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap"));
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.comments[1].end_line, 2);
        assert!(!lexed.comments[0].is_doc());
        assert!(lex("/// doc").comments[0].is_doc());
        assert!(lex("//! inner doc").comments[0].is_doc());
    }

    #[test]
    fn strings_hide_their_contents_from_the_token_stream() {
        let toks = kinds(r#"call(".unwrap() not code", b"bytes\"quoted")"#);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, vec![".unwrap() not code", r#"bytes\"quoted"#]);
        // No `.` `unwrap` ident sequence leaked out of the literal.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hash_guards_round_trip() {
        let toks = kinds(r##"x(r#"inner "quoted" // not a comment"#, r"plain")"##);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, vec![r#"inner "quoted" // not a comment"#, "plain"]);
        let lexed = lex(r##"r#"multi
line"# after"##);
        assert_eq!(lexed.tokens[0].text, "multi\nline");
        assert_eq!(lexed.tokens[1].line, 2, "lines counted inside raw strings");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let q = '\\''; let s = 'static; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "static"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, vec!["a", "\\'"]);
    }

    #[test]
    fn unicode_and_escaped_char_literals() {
        let toks = kinds(r"let c = '\u{1F600}'; let n = '\n'; let l = 'λ';");
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, vec![r"\u{1F600}", r"\n", "λ"]);
    }

    #[test]
    fn numbers_ranges_and_exponents() {
        assert_eq!(texts("0..10"), vec!["0", ".", ".", "10"]);
        assert_eq!(
            texts("1.5e-9 2E+4 7u64 0xFFu8 1_000"),
            vec!["1.5e-9", "2E+4", "7u64", "0xFFu8", "1_000"]
        );
        assert_eq!(
            texts("x.0.1"),
            vec!["x", ".", "0.1"],
            "tuple-index then float field"
        );
    }

    #[test]
    fn byte_char_and_byte_string() {
        let toks = kinds(r#"(b'x', b'\'', b"raw")"#);
        assert!(toks.contains(&(TokKind::Char, "x".to_string())));
        assert!(toks.contains(&(TokKind::Char, "\\'".to_string())));
        assert!(toks.contains(&(TokKind::Str, "raw".to_string())));
    }

    #[test]
    fn tricky_round_trip_smoke() {
        // The one-of-everything input: if any construct swallows its
        // neighbor, the trailing marker ident disappears.
        let src = r####"
            // line
            /* block /* nested */ */
            let s = r##"raw "with" hashes"##;
            let c = '\''; let lt: &'static str = "esc \" done";
            MARKER
        "####;
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("MARKER")));
        assert_eq!(lexed.comments.len(), 2);
    }
}
