//! The contribution-index engine is answer-invisible.
//!
//! [`IndexEngine`] answers a query either by replaying a cached
//! reverse-PPR contribution row or by falling back to a normal probe
//! run (which doubles as the row build). Because the per-query RNG is
//! keyed by `(seed, node)` only, a replayed answer must be **bit-equal**
//! to a fresh run of the index-free engine — for every query kind, both
//! probe paths (fused and legacy), every probe strategy, and regardless
//! of how many rows were built, replayed, or evicted in between.
//!
//! The version contract is exact, not at-least: a row replays only for
//! queries at the exact store version it was built on. These properties
//! drive a live [`GraphStore`] through update batches (wired to the
//! engine via the mutation observer, exactly as the service tier does),
//! lazy repairs, capacity eviction, and an overlay-compaction boundary,
//! and check that the index never serves an answer a fresh engine would
//! not produce — staleness may cost a rebuild, never correctness.

use std::sync::{Arc, Mutex};

use probesim_core::{
    IndexEngine, ProbeBudget, ProbeSim, ProbeSimConfig, ProbeStrategy, Query, QueryOutput,
};
use probesim_graph::{CsrGraph, GraphStore, GraphUpdate, NodeId};
use proptest::prelude::*;

fn engine(fuse: bool, strategy: ProbeStrategy) -> ProbeSim {
    let mut cfg = ProbeSimConfig::new(0.6, 0.15, 0.05)
        .with_seed(0x1DEC5)
        .with_num_walks(60);
    cfg.optimizations.fuse_probes = fuse;
    cfg.optimizations.strategy = strategy;
    ProbeSim::new(cfg)
}

/// All three query kinds on one source — one cached row serves them all.
fn queries(node: NodeId) -> [Query; 3] {
    [
        Query::SingleSource { node },
        Query::TopK { node, k: 3 },
        Query::Threshold { node, tau: 0.05 },
    ]
}

/// Scores and ranking must match bit-for-bit. Stats are *not* compared:
/// a replay reports `index_rows_used` instead of probe counters — that
/// asymmetry is the engine's observable cost model, not an answer.
fn assert_answers_bit_identical(via_index: &QueryOutput, direct: &QueryOutput, context: &str) {
    assert_eq!(
        via_index.scores.len(),
        direct.scores.len(),
        "{context}: touched-set sizes differ"
    );
    for ((va, sa), (vb, sb)) in via_index.scores.iter().zip(direct.scores.iter()) {
        assert_eq!(va, vb, "{context}: touched sets differ");
        assert_eq!(sa.to_bits(), sb.to_bits(), "{context}: node {va}");
    }
    assert_eq!(via_index.ranking(), direct.ranking(), "{context}");
}

fn csr(n: usize, raw_edges: Vec<(u32, u32)>) -> CsrGraph {
    let edges: Vec<(u32, u32)> = raw_edges
        .into_iter()
        .map(|(u, v)| (u % n as u32, v % n as u32))
        .filter(|&(u, v)| u != v)
        .collect();
    CsrGraph::from_edges(n, &edges)
}

fn updates(n: usize, raw: Vec<(u32, u32, bool)>) -> Vec<GraphUpdate> {
    raw.into_iter()
        .map(|(u, v, insert)| {
            let (u, v) = (u % n as u32, v % n as u32);
            let v = if u == v { (v + 1) % n as u32 } else { v };
            if insert {
                GraphUpdate::Insert { u, v }
            } else {
                GraphUpdate::Remove { u, v }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Static graph, CSR backend: an index engine fed a revisiting query
    /// stream answers every query bit-identically to fresh direct runs —
    /// for both probe paths, every strategy, and all three query kinds —
    /// and replays really are replays (zero probe work) whenever the
    /// source's row survived capacity eviction.
    #[test]
    fn index_answers_bit_identically_on_static_graphs(
        n in 8usize..32,
        raw_edges in prop::collection::vec((0u32..32, 0u32..32), 10..120),
        visits in prop::collection::vec(0u32..8, 4..16),
        fuse in any::<bool>(),
        strategy_pick in 0usize..3,
        max_rows in 1usize..6,
    ) {
        let graph = csr(n, raw_edges);
        let strategy = [
            ProbeStrategy::Deterministic,
            ProbeStrategy::Randomized,
            ProbeStrategy::Hybrid,
        ][strategy_pick];
        let e = engine(fuse, strategy);
        let mut session = e.session(&graph);
        // A small capacity forces evictions mid-stream; evicted sources
        // silently build through again — answers must not notice.
        let mut index = IndexEngine::new().with_max_rows(max_rows);
        for (i, &source) in visits.iter().enumerate() {
            let query = queries(source)[i % 3];
            let fresh = index.row_fresh(source, 0, n);
            let via_index = index
                .run(&mut session, 0, query, ProbeBudget::unlimited())
                .unwrap();
            let direct = session.run(query).unwrap();
            assert_answers_bit_identical(
                &via_index,
                &direct,
                &format!("visit {i} source {source} {strategy:?} fuse={fuse}"),
            );
            prop_assert_eq!(via_index.stats.planner_engine, 1);
            if fresh {
                prop_assert_eq!(via_index.stats.walks, 0, "a replay does no probe work");
                prop_assert_eq!(via_index.stats.index_rows_used, via_index.scores.len());
            } else {
                prop_assert_eq!(via_index.stats.index_rows_stale, 1);
            }
        }
        prop_assert!(index.table().rows() <= max_rows);
        prop_assert_eq!(
            index.rows_built() + index.rows_replayed(),
            visits.len() as u64
        );
    }

    /// Live store churn: with the index wired to the store's mutation
    /// observer (the service-tier wiring), every query at the current
    /// version — before, between, and after update batches, with lazy
    /// repairs draining in the background and across an overlay
    /// compaction — answers bit-identically to a fresh direct run on the
    /// same snapshot. The exact-version contract holds throughout: after
    /// an effective batch, a previously cached row is never replayed
    /// until it has been rebuilt at the new version.
    #[test]
    fn index_stays_bit_equal_under_live_updates_and_repair(
        n in 8usize..24,
        raw_edges in prop::collection::vec((0u32..24, 0u32..24), 10..80),
        raw_batches in prop::collection::vec(
            prop::collection::vec((0u32..24, 0u32..24, any::<bool>()), 1..6),
            1..5,
        ),
        node in 0u32..8,
        fuse in any::<bool>(),
    ) {
        let base = csr(n, raw_edges);
        let mut store = GraphStore::from_view(&base);
        // Arc<Mutex<…>> only because the observer must be Send + Sync;
        // this test is single-threaded.
        let index = Arc::new(Mutex::new(IndexEngine::new()));
        store.set_mutation_observer({
            let index = Arc::clone(&index);
            move |version| index.lock().unwrap().note_update(version)
        });
        let e = engine(fuse, ProbeStrategy::Hybrid);

        // Warm the cache at version 0 across all query kinds: the first
        // query builds the row, the other two kinds replay it.
        let v0 = store.version();
        let snap0 = store.snapshot();
        {
            let mut session = e.session(snap0.clone());
            for (i, query) in queries(node).into_iter().enumerate() {
                let via_index = index
                    .lock()
                    .unwrap()
                    .run(&mut session, v0, query, ProbeBudget::unlimited())
                    .unwrap();
                let direct = session.run(query).unwrap();
                assert_answers_bit_identical(&via_index, &direct, &format!("warmup #{i}"));
                prop_assert_eq!(via_index.stats.index_rows_stale, usize::from(i == 0));
            }
        }

        for (round, raw_batch) in raw_batches.into_iter().enumerate() {
            let effective = store.apply_all(updates(n, raw_batch));
            let version = store.version();
            let mut session = e.session(store.snapshot());
            // Mid-repair staleness: after an effective batch the cached
            // row's stamp no longer matches, so the very first query at
            // the new version must fall back to a rebuild.
            let fresh_before = index.lock().unwrap().row_fresh(node, version, n);
            prop_assert_eq!(fresh_before, effective == 0, "round {round}");
            if effective > 0 {
                prop_assert!(
                    index.lock().unwrap().dirty_len() > 0,
                    "the observer must have queued the stale row"
                );
            }
            let query = queries(node)[round % 3];
            let via_index = index
                .lock()
                .unwrap()
                .run(&mut session, version, query, ProbeBudget::unlimited())
                .unwrap();
            let direct = session.run(query).unwrap();
            assert_answers_bit_identical(&via_index, &direct, &format!("round {round}"));
            prop_assert_eq!(via_index.stats.index_rows_stale, usize::from(!fresh_before));
            // Drain the repair queue off the query path, then a replay
            // must serve the *current* edge set.
            while index.lock().unwrap().repair_next(&mut session, version).is_some() {}
            let replayed = index
                .lock()
                .unwrap()
                .replay(Query::SingleSource { node }, version, n)
                .unwrap();
            let direct = session.run(Query::SingleSource { node }).unwrap();
            assert_answers_bit_identical(&replayed, &direct, &format!("post-repair {round}"));
        }

        // Overlay compaction folds the representation but not the logical
        // graph: the version is unchanged, so the cached row replays
        // across the boundary and still matches a fresh run bit-for-bit.
        let version = store.version();
        store.compact();
        prop_assert_eq!(store.version(), version, "compaction must not bump the version");
        let mut session = e.session(store.snapshot());
        let via_index = index
            .lock()
            .unwrap()
            .run(&mut session, version, Query::TopK { node, k: 3 }, ProbeBudget::unlimited())
            .unwrap();
        prop_assert_eq!(
            via_index.stats.index_rows_stale, 0,
            "the row is still fresh across compaction"
        );
        let direct = session.run(Query::TopK { node, k: 3 }).unwrap();
        assert_answers_bit_identical(&via_index, &direct, "post-compaction replay");

        // Pinned read back at version 0: the row cached for `node` is now
        // stamped at the latest version, so a v0 session must *not* get a
        // replay of it — exact-stamp matching, not at-least — and its
        // build-through answer must match a fresh run on the old snapshot.
        if store.version() > v0 {
            prop_assert!(
                index.lock().unwrap().replay(Query::SingleSource { node }, v0, n).is_none(),
                "a newer row must never serve a version-pinned read"
            );
        }
        let mut pinned = e.session(snap0);
        let via_index = index
            .lock()
            .unwrap()
            .run(&mut pinned, v0, Query::SingleSource { node }, ProbeBudget::unlimited())
            .unwrap();
        let direct = pinned.run(Query::SingleSource { node }).unwrap();
        assert_answers_bit_identical(&via_index, &direct, "pinned v0 read");
    }

    /// εi-truncated rows trade exactness for size with a bounded error:
    /// every replayed score is within εi of the fresh answer, on every
    /// query kind, and truncation never invents touched nodes.
    #[test]
    fn epsilon_i_replays_concentrate_within_the_truncation_budget(
        n in 8usize..24,
        raw_edges in prop::collection::vec((0u32..24, 0u32..24), 10..80),
        node in 0u32..8,
        epsilon_i in 0.001f64..0.2,
        fuse in any::<bool>(),
    ) {
        let graph = csr(n, raw_edges);
        let e = engine(fuse, ProbeStrategy::Hybrid);
        let mut session = e.session(&graph);
        let mut index = IndexEngine::new().with_epsilon_i(epsilon_i);
        // Build the row once, then check every kind's replay against the
        // untruncated direct answer.
        index
            .run(&mut session, 0, Query::SingleSource { node }, ProbeBudget::unlimited())
            .unwrap();
        for query in queries(node) {
            let replay = index.replay(query, 0, n).unwrap();
            let direct = session.run(query).unwrap();
            prop_assert!(replay.scores.len() <= direct.scores.len());
            for v in 0..n as NodeId {
                let err = (replay.scores.score(v) - direct.scores.score(v)).abs();
                prop_assert!(err <= epsilon_i + 1e-12, "node {v}: error {err} > εi {epsilon_i}");
            }
        }
    }
}
