//! Degree-ordered relabeling is answer-invisible.
//!
//! A `CsrGraph` built with [`CsrGraph::degree_ordered_from`] (or a
//! `GraphStore` built with [`GraphStore::from_view_degree_ordered`])
//! stores its adjacency under a hub-first internal labeling for cache
//! locality, behind a [`probesim_graph::NodeRemap`] the session applies
//! at the query boundary. Three things make execution label-invariant,
//! and these properties pin all of them down:
//!
//! * relabeled adjacency rows keep *external-ascending* element order,
//!   so deterministic expansion accumulates in the same floating-point
//!   order;
//! * walk sampling and randomized in-edge draws are positional, and the
//!   per-query RNG is seeded with the external node id;
//! * the dense-candidate scan of the randomized probe walks candidates
//!   in external order through the remap.
//!
//! Together: every query kind answers **bit-identically** (scores and
//! counters) with and without relabeling — across the CSR backend, the
//! store/snapshot backend, live overlay mutations, and a compaction
//! boundary (with and without degree-order refresh).

use probesim_core::{ProbeSim, ProbeSimConfig, ProbeStrategy, Query, QueryOutput};
use probesim_graph::{CsrGraph, GraphStore, GraphUpdate, GraphView};
use proptest::prelude::*;

fn engine(strategy: ProbeStrategy) -> ProbeSim {
    let mut cfg = ProbeSimConfig::new(0.6, 0.15, 0.05)
        .with_seed(0xC0FFEE)
        .with_num_walks(60);
    cfg.optimizations.strategy = strategy;
    ProbeSim::new(cfg)
}

fn queries(node: u32) -> [Query; 3] {
    [
        Query::SingleSource { node },
        Query::TopK { node, k: 3 },
        Query::Threshold { node, tau: 0.05 },
    ]
}

fn assert_outputs_bit_identical(a: &QueryOutput, b: &QueryOutput, context: &str) {
    assert_eq!(a.stats, b.stats, "{context}: counters diverged");
    assert_eq!(a.scores.len(), b.scores.len(), "{context}");
    for ((va, sa), (vb, sb)) in a.scores.iter().zip(b.scores.iter()) {
        assert_eq!(va, vb, "{context}: touched sets differ");
        assert_eq!(sa.to_bits(), sb.to_bits(), "{context}: node {va}");
    }
    assert_eq!(a.ranking(), b.ranking(), "{context}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CSR backend: a degree-ordered rebuild answers every query kind
    /// bit-identically to the original labeling, for every strategy.
    #[test]
    fn degree_ordered_csr_answers_bit_identically(
        n in 8usize..32,
        raw_edges in prop::collection::vec((0u32..32, 0u32..32), 10..120),
        node in 0u32..8,
        strategy_pick in 0usize..3,
    ) {
        let edges: Vec<(u32, u32)> = raw_edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .filter(|&(u, v)| u != v)
            .collect();
        let plain = CsrGraph::from_edges(n, &edges);
        let relabeled = CsrGraph::degree_ordered_from(&plain);
        prop_assert!(relabeled.node_remap().is_some());
        let strategy = [
            ProbeStrategy::Deterministic,
            ProbeStrategy::Randomized,
            ProbeStrategy::Hybrid,
        ][strategy_pick];
        let e = engine(strategy);
        for query in queries(node) {
            let a = e.session(&plain).run(query).unwrap();
            let b = e.session(&relabeled).run(query).unwrap();
            assert_outputs_bit_identical(&a, &b, &format!("{strategy:?} {query:?}"));
        }
    }

    /// Store/snapshot backend: a degree-ordered store stays
    /// bit-identical through live overlay mutations and across a
    /// compaction boundary — both keeping the original relabeling and
    /// recomputing it from post-update degrees.
    #[test]
    fn degree_ordered_store_survives_updates_and_compaction(
        n in 8usize..24,
        raw_edges in prop::collection::vec((0u32..24, 0u32..24), 10..80),
        raw_updates in prop::collection::vec((0u32..24, 0u32..24, any::<bool>()), 1..24),
        node in 0u32..8,
        refresh in any::<bool>(),
    ) {
        let edges: Vec<(u32, u32)> = raw_edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .filter(|&(u, v)| u != v)
            .collect();
        let updates: Vec<GraphUpdate> = raw_updates
            .into_iter()
            .map(|(u, v, insert)| {
                let (u, v) = (u % n as u32, v % n as u32);
                let v = if u == v { (v + 1) % n as u32 } else { v };
                if insert {
                    GraphUpdate::Insert { u, v }
                } else {
                    GraphUpdate::Remove { u, v }
                }
            })
            .collect();
        let base = CsrGraph::from_edges(n, &edges);
        let mut plain = GraphStore::from_view(&base);
        let mut ordered =
            GraphStore::from_view_degree_ordered(&base).with_degree_order_refresh(refresh);
        let e = engine(ProbeStrategy::Hybrid);
        let query = Query::SingleSource { node };

        // Same external-id updates against both stores; effectiveness
        // must agree (the remap is a pure storage concern).
        for update in updates {
            prop_assert_eq!(
                plain.apply_all([update]),
                ordered.apply_all([update]),
                "update {:?}", update
            );
        }
        let a = e.session(plain.snapshot()).run(query).unwrap();
        let b = e.session(ordered.snapshot()).run(query).unwrap();
        assert_outputs_bit_identical(&a, &b, "post-update snapshots");

        // Across the compaction boundary (refresh=true recomputes the
        // relabeling from post-update degrees; false carries it over).
        plain.compact();
        ordered.compact();
        let a = e.session(plain.snapshot()).run(query).unwrap();
        let b = e.session(ordered.snapshot()).run(query).unwrap();
        assert_outputs_bit_identical(&a, &b, "post-compaction snapshots");
        if refresh {
            prop_assert!(
                ordered.snapshot().node_remap().is_some(),
                "refresh must keep the store degree-ordered"
            );
        }
    }
}
