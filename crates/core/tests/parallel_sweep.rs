//! Thread-count invariance of the parallel fused sweep.
//!
//! The container running CI may have a single core, so these tests do
//! not measure speedup — they pin down the properties that make the
//! parallel sweep *safe to enable anywhere*:
//!
//! * **Deterministic strategy**: the contribution-replay merge reproduces
//!   the sequential floating-point add sequence exactly, so parallel
//!   output (any thread count) is bit-identical to the sequential path —
//!   scores *and* counters.
//! * **Randomized strategy**: the parallel mode draws from per-chunk RNG
//!   streams seeded by `(query seed, expansion, chunk)`; the chunk grid
//!   depends only on frontier length, so output is identical at every
//!   thread count. (It is a *different* unbiased estimate than the
//!   sequential single-stream mode — that divergence doubles as the
//!   witness that frontiers really crossed the parallel threshold.)
//! * **Abort safety**: a budget abort mid-parallel-sweep leaves the
//!   pooled session bit-identical to a fresh one.

use probesim_core::{ProbeBudget, ProbeSim, ProbeSimConfig, ProbeStrategy, Query, QueryError};
use probesim_graph::CsrGraph;

/// A deterministic pseudo-random graph dense enough that fused frontiers
/// near the trie root exceed the parallel dispatch threshold.
fn dense_random_graph(n: usize, out_degree: usize, seed: u64) -> CsrGraph {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for _ in 0..out_degree {
            let v = (next() % n as u64) as u32;
            if v != u {
                edges.push((u, v));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

fn engine(strategy: ProbeStrategy, parallel: bool, threads: usize) -> ProbeSim {
    // Long walks (decay 0.8) and a fixed walk count keep frontiers large
    // and runtimes bounded.
    let mut cfg = ProbeSimConfig::new(0.8, 0.25, 0.1)
        .with_seed(2017)
        .with_num_walks(400);
    cfg.optimizations.strategy = strategy;
    cfg.optimizations.parallel_sweep = parallel;
    cfg.optimizations.sweep_threads = threads;
    ProbeSim::new(cfg)
}

fn assert_bit_identical(
    a: &probesim_core::QueryOutput,
    b: &probesim_core::QueryOutput,
    context: &str,
) {
    assert_eq!(a.stats, b.stats, "{context}: counters diverged");
    assert_eq!(a.scores.len(), b.scores.len(), "{context}");
    for ((va, sa), (vb, sb)) in a.scores.iter().zip(b.scores.iter()) {
        assert_eq!(va, vb, "{context}: touched sets differ");
        assert_eq!(
            sa.to_bits(),
            sb.to_bits(),
            "{context}: node {va}: {sa} vs {sb}"
        );
    }
}

#[test]
fn deterministic_parallel_is_bit_identical_to_sequential() {
    let g = dense_random_graph(256, 8, 7);
    for node in [0u32, 63, 200] {
        let query = Query::SingleSource { node };
        let sequential = engine(ProbeStrategy::Deterministic, false, 1)
            .session(&g)
            .run(query)
            .unwrap();
        assert!(
            sequential.scores.len() > 32,
            "query should touch many nodes"
        );
        for threads in [1usize, 2, 4, 8] {
            let parallel = engine(ProbeStrategy::Deterministic, true, threads)
                .session(&g)
                .run(query)
                .unwrap();
            assert_bit_identical(
                &parallel,
                &sequential,
                &format!("node {node}, threads {threads}"),
            );
        }
    }
}

#[test]
fn randomized_parallel_is_thread_count_invariant() {
    let g = dense_random_graph(256, 8, 7);
    for strategy in [ProbeStrategy::Randomized, ProbeStrategy::Hybrid] {
        for node in [0u32, 63, 200] {
            let query = Query::SingleSource { node };
            let reference = engine(strategy, true, 1).session(&g).run(query).unwrap();
            for threads in [2usize, 4, 8] {
                let out = engine(strategy, true, threads)
                    .session(&g)
                    .run(query)
                    .unwrap();
                assert_bit_identical(
                    &out,
                    &reference,
                    &format!("{strategy:?}, node {node}, threads {threads}"),
                );
            }
        }
    }
}

#[test]
fn randomized_parallel_mode_actually_engages() {
    // The per-chunk RNG streams differ from the sequential single
    // stream, so once a frontier crosses the dispatch threshold the two
    // modes must produce different (both unbiased) estimates. Equality
    // here would mean the threshold was never crossed and the parallel
    // path went untested above.
    let g = dense_random_graph(256, 8, 7);
    let query = Query::SingleSource { node: 0 };
    let sequential = engine(ProbeStrategy::Randomized, false, 1)
        .session(&g)
        .run(query)
        .unwrap();
    let parallel = engine(ProbeStrategy::Randomized, true, 4)
        .session(&g)
        .run(query)
        .unwrap();
    assert_ne!(
        sequential.scores, parallel.scores,
        "parallel dispatch threshold never crossed — thresholds or graph shape changed?"
    );
}

#[test]
fn parallel_abort_leaves_the_session_reusable() {
    let g = dense_random_graph(256, 8, 7);
    let query = Query::SingleSource { node: 0 };
    for strategy in [
        ProbeStrategy::Deterministic,
        ProbeStrategy::Randomized,
        ProbeStrategy::Hybrid,
    ] {
        let e = engine(strategy, true, 4);
        let reference = e.session(&g).run(query).unwrap();
        let mut session = e.session(&g);
        // A cap far below the full query's work guarantees an abort, and
        // the abort point is deterministic (work units, not wall clock).
        match session.run_with_budget(query, ProbeBudget::unlimited().with_work_cap(50)) {
            Err(QueryError::WorkBudgetExceeded { partial }) => {
                assert!(partial.total_work() > 0);
            }
            other => panic!("{strategy:?}: expected work abort, got {other:?}"),
        }
        let after = session.run(query).unwrap();
        assert_bit_identical(&after, &reference, &format!("{strategy:?} after abort"));
    }
}

#[test]
fn deterministic_parallel_total_work_is_unchanged() {
    // The perf contract on a 1-CPU container: parallelism must not
    // change *how much* deterministic work a query does, only where it
    // runs. (`QueryStats` equality in the bit-identity test already
    // implies this; stated separately because the bench gate keys on
    // total_work.)
    let g = dense_random_graph(256, 8, 7);
    let query = Query::SingleSource { node: 42 };
    let sequential = engine(ProbeStrategy::Deterministic, false, 1)
        .session(&g)
        .run(query)
        .unwrap();
    let parallel = engine(ProbeStrategy::Deterministic, true, 8)
        .session(&g)
        .run(query)
        .unwrap();
    assert_eq!(sequential.stats.total_work(), parallel.stats.total_work());
}
