//! Property tests for probesim-core internals: the error-budget calculus,
//! top-k selection, and workspace/trie behavior under arbitrary inputs.

use probesim_core::workspace::LevelBuf;
use probesim_core::{top_k_from_scores, ProbeSimConfig, WalkTrie};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every (c, εa, δ), the derived budget satisfies the corrected
    /// Theorem 2 inequality — the εa guarantee is never silently violated
    /// by parameter derivation.
    #[test]
    fn budget_always_satisfies_guarantee(
        decay in 0.05f64..0.95,
        epsilon in 0.005f64..0.5,
        delta in 0.001f64..0.2,
        compensation in any::<bool>(),
    ) {
        let mut cfg = ProbeSimConfig::new(decay, epsilon, delta);
        cfg.optimizations.truncation_compensation = compensation;
        let budget = cfg.budget();
        let lhs = budget.guaranteed_error(cfg.sqrt_decay(), compensation);
        prop_assert!(lhs <= epsilon + 1e-9, "lhs = {lhs}, eps = {epsilon}");
        prop_assert!(budget.sampling > 0.0);
        prop_assert!(budget.pruning >= 0.0);
        prop_assert!(budget.walk_cap >= 1);
    }

    /// The Chernoff walk count is monotone: more nodes or a tighter εa
    /// never means fewer walks.
    #[test]
    fn walk_count_is_monotone(
        n1 in 2usize..100_000,
        n2 in 2usize..100_000,
        eps in 0.01f64..0.3,
    ) {
        let cfg = ProbeSimConfig::paper(eps);
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(cfg.num_walks(lo) <= cfg.num_walks(hi));
        let tighter = ProbeSimConfig::paper(eps / 2.0);
        prop_assert!(tighter.num_walks(lo) >= cfg.num_walks(lo));
    }

    /// top_k_from_scores returns a sorted prefix of the full ranking and
    /// never includes the query node.
    #[test]
    fn top_k_is_sorted_prefix(
        scores in prop::collection::vec(0.0f64..1.0, 2..120),
        k in 1usize..40,
    ) {
        let query = (scores.len() / 2) as u32;
        let top = top_k_from_scores(&scores, query, k);
        prop_assert!(top.len() <= k);
        prop_assert!(top.len() == k.min(scores.len() - 1));
        for pair in top.windows(2) {
            prop_assert!(pair[0].1 >= pair[1].1
                || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0));
        }
        prop_assert!(top.iter().all(|&(v, _)| v != query));
        // Every omitted node scores no higher than the last kept node.
        if let Some(&(_, cutoff)) = top.last() {
            let kept: std::collections::HashSet<u32> = top.iter().map(|&(v, _)| v).collect();
            for (v, &s) in scores.iter().enumerate() {
                let v = v as u32;
                if v != query && !kept.contains(&v) {
                    prop_assert!(s <= cutoff + 1e-15, "omitted {v} with score {s} > cutoff {cutoff}");
                }
            }
        }
    }

    /// LevelBuf add/set/get/retain behave like a reference HashMap.
    #[test]
    fn levelbuf_matches_reference_map(
        ops in prop::collection::vec((0u32..16, 0.0f64..2.0, any::<bool>()), 0..200),
        threshold in 0.0f64..2.0,
    ) {
        let mut buf = LevelBuf::new(16);
        buf.clear();
        let mut reference: std::collections::HashMap<u32, f64> = Default::default();
        for (v, x, use_set) in ops {
            if use_set {
                buf.set(v, x);
                reference.insert(v, x);
            } else {
                buf.add(v, x);
                *reference.entry(v).or_insert(0.0) += x;
            }
        }
        for v in 0..16u32 {
            let expected = reference.get(&v).copied().unwrap_or(0.0);
            prop_assert!((buf.get(v) - expected).abs() < 1e-12, "node {v}");
            prop_assert_eq!(buf.contains(v), reference.contains_key(&v));
        }
        buf.retain(|_, s| s > threshold);
        reference.retain(|_, s| *s > threshold);
        prop_assert_eq!(buf.len(), reference.len());
        for (&v, &s) in &reference {
            prop_assert!((buf.get(v) - s).abs() < 1e-12);
        }
    }

    /// Trie node count never exceeds total inserted walk nodes plus the
    /// root, and total_walks is exact.
    #[test]
    fn trie_size_bounds(
        walks in prop::collection::vec(prop::collection::vec(0u32..8, 1..7), 0..40)
    ) {
        let mut trie = WalkTrie::new(0);
        let mut total_nodes = 1usize;
        for mut w in walks.clone() {
            w[0] = 0;
            total_nodes += w.len() - 1;
            trie.insert(&w);
        }
        prop_assert_eq!(trie.total_walks() as usize, walks.len());
        prop_assert!(trie.len() <= total_nodes);
        // Deduplication really happens when walks repeat.
        if walks.len() >= 2 && walks.iter().all(|w| w.len() == walks[0].len()) {
            // identical-shape walks may or may not collide; only the bound
            // above is guaranteed.
        }
    }
}
