//! Configuration and the error-parameter budget (Theorem 2).
//!
//! ProbeSim's user-facing accuracy knob is a single absolute-error bound
//! `εa`, but internally that budget is split three ways:
//!
//! * `ε` — sampling error (drives the trial count `nr = (3c/ε²)·ln(n/δ)`),
//! * `εt` — walk-truncation error (pruning rule 1,
//!   `ℓt = ⌊log εt / log √c⌋`),
//! * `εp` — probe-pruning error (pruning rule 2).
//!
//! Theorem 2 requires `ε + (1+ε)/(1−√c)·εp + εt/2 ≤ εa` (the `/2` assumes
//! the one-sided truncation compensation; without compensation the full
//! `εt` must fit). [`ErrorBudget::derive`] performs that split.

/// Which PROBE implementation the query driver should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProbeStrategy {
    /// Algorithm 2: exact scores, O(m) per probe, batchable.
    Deterministic,
    /// Algorithm 4: Bernoulli scores, O(n) expected per probe. Cannot be
    /// batched (each batched walk needs an independent probe).
    Randomized,
    /// Section 4.4 "best of both worlds": deterministic until the frontier
    /// out-degree sum exceeds `c0·w·n`, then randomized continuations.
    #[default]
    Hybrid,
}

/// Optimization toggles (Section 4). All default to on; the ablation
/// benchmarks flip them individually.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Optimizations {
    /// Pruning rule 1: truncate √c-walks at `ℓt` steps.
    pub truncate_walks: bool,
    /// Pruning rule 1 refinement: add `εt/2` to every nonzero estimate,
    /// centering the one-sided truncation error. Off by default: it helps
    /// the worst-case bound but inflates near-zero scores, and the paper's
    /// own AbsError plots are consistent with it being disabled.
    pub truncation_compensation: bool,
    /// Pruning rule 2: drop frontier entries whose best-case contribution
    /// `Score(x)·(√c)^(i−j−1)` is at most `εp`.
    pub prune_scores: bool,
    /// Batch √c-walks in a reverse-reachability trie (Algorithm 3) so each
    /// distinct prefix is probed once.
    pub batch_walks: bool,
    /// Fuse all of a query's probes into one level-synchronous weighted
    /// frontier sweep over the trie ([`crate::frontier`]), so a graph node
    /// reached at the same trie position by many prefixes is expanded at
    /// most once. Only effective together with `batch_walks`; the legacy
    /// per-prefix path is kept for A/B comparison and property tests.
    pub fuse_probes: bool,
    /// Tier 4: partition each fused (level, group) frontier expansion
    /// across scoped worker threads when the frontier is large enough.
    /// Off by default. Output is **bit-identical** to the sequential
    /// sweep at every thread count (the parallel paths replay per-chunk
    /// contributions in fixed chunk order; randomized expansions derive
    /// one RNG stream per fixed-width chunk). Only effective together
    /// with `fuse_probes`.
    pub parallel_sweep: bool,
    /// Worker threads for `parallel_sweep`. `0` (the default) picks the
    /// machine's available parallelism, capped at 8. Results never
    /// depend on this value.
    pub sweep_threads: usize,
    /// PROBE implementation.
    pub strategy: ProbeStrategy,
    /// The constant `c0` in the hybrid switch condition `Σ|O(x)| > c0·w·n`.
    pub hybrid_c0: f64,
}

impl Default for Optimizations {
    fn default() -> Self {
        Optimizations {
            truncate_walks: true,
            truncation_compensation: false,
            prune_scores: true,
            batch_walks: true,
            fuse_probes: true,
            parallel_sweep: false,
            sweep_threads: 0,
            strategy: ProbeStrategy::default(),
            hybrid_c0: 0.5,
        }
    }
}

impl Optimizations {
    /// The unoptimized Algorithm 1 + Algorithm 2 configuration.
    pub fn basic() -> Self {
        Optimizations {
            truncate_walks: false,
            truncation_compensation: false,
            prune_scores: false,
            batch_walks: false,
            fuse_probes: false,
            parallel_sweep: false,
            sweep_threads: 0,
            strategy: ProbeStrategy::Deterministic,
            hybrid_c0: 0.5,
        }
    }

    /// The worker-thread count `parallel_sweep` should use: the
    /// configured `sweep_threads`, or the machine's available
    /// parallelism (capped at 8) when left at 0.
    pub fn resolved_sweep_threads(&self) -> usize {
        if self.sweep_threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(8)
        } else {
            self.sweep_threads
        }
    }
}

/// Full ProbeSim configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSimConfig {
    /// SimRank decay factor `c ∈ (0, 1)`; the paper's experiments use 0.6.
    pub decay: f64,
    /// Absolute error bound `εa`.
    pub epsilon: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// Optimization toggles.
    pub optimizations: Optimizations,
    /// RNG seed, so experiments are reproducible.
    pub seed: u64,
    /// Optional hard override of the trial count (benchmarks sweep this;
    /// `None` uses the Chernoff-bound count).
    pub num_walks_override: Option<usize>,
}

impl ProbeSimConfig {
    /// A configuration with the given decay `c`, error `εa` and failure
    /// probability `δ`, default optimizations and seed 0.
    pub fn new(decay: f64, epsilon: f64, delta: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&decay) && decay > 0.0,
            "decay must be in (0,1)"
        );
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        ProbeSimConfig {
            decay,
            epsilon,
            delta,
            optimizations: Optimizations::default(),
            seed: 0,
            num_walks_override: None,
        }
    }

    /// The paper's experimental configuration: `c = 0.6`, `δ = 0.01`, all
    /// optimizations of Sections 4.1 and 4.3/4.4 enabled.
    pub fn paper(epsilon: f64) -> Self {
        ProbeSimConfig::new(0.6, epsilon, 0.01)
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the optimization set.
    pub fn with_optimizations(mut self, optimizations: Optimizations) -> Self {
        self.optimizations = optimizations;
        self
    }

    /// Overrides the number of √c-walks (benchmark sweeps).
    pub fn with_num_walks(mut self, walks: usize) -> Self {
        self.num_walks_override = Some(walks);
        self
    }

    /// `√c`.
    #[inline]
    pub fn sqrt_decay(&self) -> f64 {
        self.decay.sqrt()
    }

    /// Derives the internal error split for a graph with `n` nodes.
    pub fn budget(&self) -> ErrorBudget {
        ErrorBudget::derive(self)
    }

    /// The Chernoff-bound trial count `nr = ⌈(3c/ε²)·ln(n/δ)⌉` for a graph
    /// with `n` nodes (or the override).
    pub fn num_walks(&self, n: usize) -> usize {
        if let Some(w) = self.num_walks_override {
            return w;
        }
        let eps = self.budget().sampling;
        let n = n.max(2) as f64;
        ((3.0 * self.decay / (eps * eps)) * (n / self.delta).ln()).ceil() as usize
    }
}

/// The derived `(ε, εt, εp, ℓt)` split satisfying Theorem 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBudget {
    /// Sampling error `ε`.
    pub sampling: f64,
    /// Truncation error `εt` (pruning rule 1). 0 disables truncation.
    pub truncation: f64,
    /// Probe-pruning threshold `εp` (pruning rule 2). 0 disables pruning.
    pub pruning: f64,
    /// Walk cap `ℓt` in nodes; `usize::MAX` when truncation is off.
    pub walk_cap: usize,
}

impl ErrorBudget {
    /// Splits `εa` as `ε = εa/2`, truncation share `εa/4`, pruning share
    /// `εa/4`, then back-solves `εt` and `εp` from their Theorem 2
    /// coefficients. Disabled optimizations return their full share to the
    /// guarantee (the bound just becomes slack).
    pub fn derive(cfg: &ProbeSimConfig) -> Self {
        let sqrt_c = cfg.sqrt_decay();
        let opts = &cfg.optimizations;
        let sampling = cfg.epsilon / 2.0;
        let (truncation, walk_cap) = if opts.truncate_walks {
            // Theorem 2 charges εt/2 with compensation, εt without.
            let share = cfg.epsilon / 4.0;
            let eps_t = if opts.truncation_compensation {
                2.0 * share
            } else {
                share
            };
            let cap = (eps_t.ln() / sqrt_c.ln()).floor().max(1.0) as usize;
            (eps_t, cap)
        } else {
            (0.0, usize::MAX)
        };
        let pruning = if opts.prune_scores {
            // The paper's Theorem 2 charges pruning with (1+ε)/(1−√c)·εp,
            // resting on Lemma 7's claim that a single probe loses at most
            // εp. That lemma's induction drops the compounding of freshly
            // pruned mass: the provable per-probe bound is (i−1)·εp (one εp
            // per pruned level; see the `pruning_is_one_sided` property
            // test, whose counterexample exceeds εp). Summed over the
            // prefixes of one walk, the loss is Σ_{i=2..ℓ}(i−1) ≤ ℓ(ℓ−1)/2,
            // whose expectation for the geometric ℓ is √c/(1−√c)²; with
            // truncation it is also capped at ℓt(ℓt−1)/2. We charge that
            // corrected coefficient (with the paper's (1+ε) concentration
            // slack), keeping the εa guarantee sound at the cost of a
            // smaller εp than the paper would use.
            let expectation_bound = sqrt_c / ((1.0 - sqrt_c) * (1.0 - sqrt_c));
            let kappa = if walk_cap == usize::MAX {
                expectation_bound
            } else {
                let cap = walk_cap as f64;
                expectation_bound.min(cap * (cap - 1.0) / 2.0)
            };
            cfg.epsilon / (4.0 * kappa.max(1.0) * (1.0 + sampling))
        } else {
            0.0
        };
        ErrorBudget {
            sampling,
            truncation,
            pruning,
            walk_cap,
        }
    }

    /// The guaranteed worst-case absolute error of this split — the
    /// Theorem 2 inequality with the corrected pruning coefficient (see
    /// [`ErrorBudget::derive`]), for `compensated` truncation or not.
    pub fn guaranteed_error(&self, sqrt_c: f64, compensated: bool) -> f64 {
        let trunc = if compensated {
            self.truncation / 2.0
        } else {
            self.truncation
        };
        let expectation_bound = sqrt_c / ((1.0 - sqrt_c) * (1.0 - sqrt_c));
        let kappa = if self.walk_cap == usize::MAX {
            expectation_bound
        } else {
            let cap = self.walk_cap as f64;
            expectation_bound.min(cap * (cap - 1.0) / 2.0)
        };
        self.sampling + (1.0 + self.sampling) * kappa.max(1.0) * self.pruning + trunc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_satisfies_theorem2() {
        for eps in [0.0125, 0.025, 0.05, 0.1, 0.2] {
            let cfg = ProbeSimConfig::paper(eps);
            let b = cfg.budget();
            let lhs = b.guaranteed_error(cfg.sqrt_decay(), false);
            assert!(
                lhs <= eps + 1e-12,
                "budget violates Theorem 2 at eps={eps}: lhs={lhs}"
            );
        }
    }

    #[test]
    fn compensated_budget_satisfies_theorem2() {
        let mut cfg = ProbeSimConfig::paper(0.05);
        cfg.optimizations.truncation_compensation = true;
        let b = cfg.budget();
        let lhs = b.guaranteed_error(cfg.sqrt_decay(), true);
        assert!(lhs <= 0.05 + 1e-12, "lhs = {lhs}");
    }

    #[test]
    fn walk_cap_matches_paper_example() {
        // Paper, Section 4.1 running example: √c = 0.5, εt = 0.05 gives a
        // walk truncated to 4 nodes.
        let mut cfg = ProbeSimConfig::new(0.25, 0.2, 0.01);
        cfg.optimizations.truncate_walks = true;
        cfg.optimizations.truncation_compensation = false;
        let b = cfg.budget();
        assert!((b.truncation - 0.05).abs() < 1e-12);
        assert_eq!(b.walk_cap, 4);
    }

    #[test]
    fn disabling_optimizations_zeroes_their_budget() {
        let cfg = ProbeSimConfig::paper(0.1).with_optimizations(Optimizations::basic());
        let b = cfg.budget();
        assert_eq!(b.truncation, 0.0);
        assert_eq!(b.pruning, 0.0);
        assert_eq!(b.walk_cap, usize::MAX);
        // With pruning disabled the whole bound is the sampling error.
        assert!(b.guaranteed_error(cfg.sqrt_decay(), false) <= 0.1);
    }

    #[test]
    fn walk_count_matches_chernoff_formula() {
        let cfg = ProbeSimConfig::paper(0.1);
        let n = 10_000usize;
        let eps = cfg.budget().sampling;
        let expected = ((3.0 * 0.6 / (eps * eps)) * (n as f64 / 0.01).ln()).ceil() as usize;
        assert_eq!(cfg.num_walks(n), expected);
        assert_eq!(cfg.with_num_walks(42).num_walks(n), 42);
    }

    #[test]
    fn walk_count_grows_with_n_and_shrinks_with_eps() {
        let cfg = ProbeSimConfig::paper(0.1);
        assert!(cfg.num_walks(1_000_000) > cfg.num_walks(1_000));
        assert!(
            ProbeSimConfig::paper(0.05).num_walks(1000)
                > ProbeSimConfig::paper(0.1).num_walks(1000)
        );
    }

    #[test]
    #[should_panic(expected = "decay must be in (0,1)")]
    fn rejects_bad_decay() {
        let _ = ProbeSimConfig::new(1.5, 0.1, 0.01);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0,1)")]
    fn rejects_bad_epsilon() {
        let _ = ProbeSimConfig::new(0.6, 0.0, 0.01);
    }
}
