//! The single-source query drivers: Algorithm 1 (per-walk) and
//! Algorithm 3 (batched via the walk trie), with any PROBE strategy.
//!
//! [`ProbeSim`] holds only configuration; execution state (workspace,
//! accumulator, RNG stream) lives in a [`crate::session::QuerySession`].
//! The methods here are thin convenience wrappers that spin up a
//! throwaway session per call — repeated-query workloads should create a
//! session once and reuse it (see the crate docs).

use probesim_graph::{GraphView, NodeId};
use rand::Rng;

use crate::accum::ScoreSink;
use crate::budget::BudgetExceeded;
use crate::config::{ProbeSimConfig, ProbeStrategy};
use crate::probe::{self, ProbeParams};
use crate::result::{QueryStats, SingleSourceResult};
use crate::session::{Query, QueryError};
use crate::trie::WalkTrie;
use crate::walk;
use crate::workspace::ProbeWorkspace;

/// The ProbeSim query engine.
///
/// Holds only configuration — there is no index to build or maintain, so
/// the same engine answers queries against any [`GraphView`], including a
/// live [`probesim_graph::DynamicGraph`] between updates.
#[derive(Debug, Clone)]
pub struct ProbeSim {
    config: ProbeSimConfig,
}

impl ProbeSim {
    /// Creates an engine from a configuration.
    pub fn new(config: ProbeSimConfig) -> Self {
        ProbeSim { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ProbeSimConfig {
        &self.config
    }

    /// Answers an approximate single-source SimRank query (Definition 1):
    /// with probability ≥ 1 − δ, every returned estimate is within `εa` of
    /// the true SimRank.
    ///
    /// The RNG is seeded from `config.seed` and the query node, so repeated
    /// identical calls return identical estimates.
    ///
    /// Convenience wrapper over a throwaway [`crate::session::QuerySession`]; panics on an
    /// invalid query node — use [`ProbeSim::try_single_source`] for a
    /// fallible variant, and a long-lived session to amortize scratch
    /// allocation across queries.
    pub fn single_source<G: GraphView + Sync>(&self, graph: &G, u: NodeId) -> SingleSourceResult {
        self.try_single_source(graph, u)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ProbeSim::single_source`]: rejects out-of-range nodes and
    /// empty graphs instead of panicking.
    pub fn try_single_source<G: GraphView + Sync>(
        &self,
        graph: &G,
        u: NodeId,
    ) -> Result<SingleSourceResult, QueryError> {
        let output = self.session(graph).run(Query::SingleSource { node: u })?;
        Ok(output.into_single_source())
    }

    /// [`ProbeSim::single_source`] with an external RNG (for experiment
    /// harnesses that manage their own seed streams). Panics on an invalid
    /// query node.
    pub fn single_source_with_rng<G: GraphView + Sync, R: Rng>(
        &self,
        graph: &G,
        u: NodeId,
        rng: &mut R,
    ) -> SingleSourceResult {
        self.session(graph)
            .run_with_rng(Query::SingleSource { node: u }, rng)
            .unwrap_or_else(|e| panic!("{e}"))
            .into_single_source()
    }

    /// Answers an approximate top-k SimRank query (Definition 2): the `k`
    /// nodes most similar to `u`, each true score within `εa` of the true
    /// i-th largest with probability ≥ 1 − δ.
    ///
    /// Convenience wrapper over a throwaway [`crate::session::QuerySession`]; panics on an
    /// invalid query — see [`ProbeSim::try_top_k`].
    pub fn top_k<G: GraphView + Sync>(&self, graph: &G, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        self.try_top_k(graph, u, k)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ProbeSim::top_k`]: rejects out-of-range nodes and empty
    /// graphs instead of panicking.
    ///
    /// `k = 0` keeps the legacy wrapper semantics and returns an empty
    /// ranking (the node is still validated); the strict session API
    /// ([`Query::TopK`]) rejects `k = 0` as [`QueryError::InvalidK`].
    pub fn try_top_k<G: GraphView + Sync>(
        &self,
        graph: &G,
        u: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, QueryError> {
        if k == 0 {
            crate::session::validate(graph, &Query::SingleSource { node: u })?;
            return Ok(Vec::new());
        }
        let output = self.session(graph).run(Query::TopK { node: u, k })?;
        Ok(output.ranking())
    }

    /// The paper-faithful reference implementation: a fresh dense `Vec<f64>`
    /// accumulator and a fresh [`ProbeWorkspace`] per call, exactly the
    /// allocation profile of the original one-shot API.
    ///
    /// Kept public (but hidden from docs) so the equivalence property tests
    /// and the `session_reuse` benchmark can compare the pooled session
    /// path against it; `SparseScores::to_dense` must match this
    /// bit-for-bit.
    #[doc(hidden)]
    pub fn single_source_dense_reference<G: GraphView + Sync>(
        &self,
        graph: &G,
        u: NodeId,
    ) -> SingleSourceResult {
        let n = graph.num_nodes();
        assert!((u as usize) < n, "query node {u} out of range (n = {n})");
        let mut rng = crate::session::query_rng(self.config.seed, u);
        let budget = self.config.budget();
        let nr = self.config.num_walks(n).max(1);
        let params = ProbeParams {
            sqrt_c: self.config.sqrt_decay(),
            epsilon_p: budget.pruning,
        };
        let mut stats = QueryStats::default();
        let mut acc = vec![0.0f64; n];
        let mut ws = ProbeWorkspace::new(n);
        let run = if self.config.optimizations.batch_walks {
            self.run_batched(
                graph,
                u,
                nr,
                &params,
                budget.walk_cap,
                &mut ws,
                &mut acc,
                &mut stats,
                &mut rng,
            )
        } else {
            self.run_unbatched(
                graph,
                u,
                nr,
                &params,
                budget.walk_cap,
                &mut ws,
                &mut acc,
                &mut stats,
                &mut rng,
            )
        };
        run.expect("invariant: a fresh workspace carries an unlimited budget");
        if self.config.optimizations.truncation_compensation && budget.truncation > 0.0 {
            let half = budget.truncation / 2.0;
            for (v, s) in acc.iter_mut().enumerate() {
                if v as NodeId != u {
                    *s += half;
                }
            }
        }
        acc[u as usize] = 1.0;
        SingleSourceResult {
            query: u,
            scores: acc,
            stats,
        }
    }

    /// Algorithm 1: probe every prefix of every walk independently.
    ///
    /// Returns [`BudgetExceeded`] when the workspace's armed
    /// [`crate::ProbeBudget`] trips between expansions (the caller — the
    /// session — resets the scratch and surfaces a typed
    /// [`QueryError`](crate::QueryError) with partial stats).
    // The flat list keeps the borrow splits (accumulator vs workspace
    // vs rng) visible at the call site; a struct would force them
    // through one &mut.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_unbatched<G: GraphView, A: ScoreSink + ?Sized, R: Rng>(
        &self,
        graph: &G,
        u: NodeId,
        nr: usize,
        params: &ProbeParams,
        walk_cap: usize,
        ws: &mut ProbeWorkspace,
        acc: &mut A,
        stats: &mut QueryStats,
        rng: &mut R,
    ) -> Result<(), BudgetExceeded> {
        let weight = 1.0 / nr as f64;
        let sqrt_c = self.config.sqrt_decay();
        let strategy = self.config.optimizations.strategy;
        let c0 = self.config.optimizations.hybrid_c0;
        let mut walk_buf: Vec<NodeId> = Vec::with_capacity(8);
        for _ in 0..nr {
            ws.budget.check(stats)?;
            walk_buf.clear();
            walk_buf.push(u);
            walk::extend_walk(graph, &mut walk_buf, sqrt_c, walk_cap, rng);
            stats.walks += 1;
            stats.walk_nodes += walk_buf.len();
            if walk_buf.len() == walk_cap {
                stats.truncated_walks += 1;
            }
            for i in 2..=walk_buf.len() {
                let path = &walk_buf[..i];
                match strategy {
                    ProbeStrategy::Deterministic => {
                        probe::deterministic(graph, path, params, weight, ws, acc, stats)?;
                    }
                    ProbeStrategy::Randomized => {
                        probe::randomized(graph, path, params, weight, ws, acc, stats, rng)?;
                    }
                    ProbeStrategy::Hybrid => {
                        probe::hybrid(graph, path, params, weight, 1, c0, ws, acc, stats, rng)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Algorithm 3: insert all walks into the reverse-reachability trie,
    /// then batch the probes over it. With `Optimizations::fuse_probes`
    /// (the default) the whole trie runs as one level-synchronous fused
    /// sweep ([`crate::frontier`]); otherwise each distinct prefix is
    /// probed independently with weight `w/nr` (the legacy per-prefix
    /// path, kept for A/B contrast and property tests).
    ///
    /// On the per-prefix path with the `Randomized` strategy, a prefix of
    /// weight `w` still needs `w` independent probes for unbiasedness
    /// (Section 4.4's motivating observation); the `Hybrid` strategy is
    /// what makes per-prefix batching pay off in the worst case. The
    /// fused path instead makes the single draw weight-proportional.
    // Same flat parameter list as run_unbatched, same borrow-split
    // reason.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_batched<G: GraphView + Sync, A: ScoreSink + ?Sized, R: Rng>(
        &self,
        graph: &G,
        u: NodeId,
        nr: usize,
        params: &ProbeParams,
        walk_cap: usize,
        ws: &mut ProbeWorkspace,
        acc: &mut A,
        stats: &mut QueryStats,
        rng: &mut R,
    ) -> Result<(), BudgetExceeded> {
        let sqrt_c = self.config.sqrt_decay();
        let strategy = self.config.optimizations.strategy;
        let c0 = self.config.optimizations.hybrid_c0;
        let mut trie = WalkTrie::new(u);
        let mut walk_buf: Vec<NodeId> = Vec::with_capacity(8);
        for _ in 0..nr {
            ws.budget.check(stats)?;
            walk_buf.clear();
            walk_buf.push(u);
            walk::extend_walk(graph, &mut walk_buf, sqrt_c, walk_cap, rng);
            stats.walks += 1;
            stats.walk_nodes += walk_buf.len();
            if walk_buf.len() == walk_cap {
                stats.truncated_walks += 1;
            }
            trie.insert(&walk_buf);
        }
        if self.config.optimizations.fuse_probes {
            return crate::frontier::run_fused(
                graph, &trie, nr, params, strategy, c0, ws, acc, stats, rng,
            );
        }
        let inv_nr = 1.0 / nr as f64;
        trie.try_for_each_prefix(|path, w| {
            stats.trie_prefixes += 1;
            let weight = w as f64 * inv_nr;
            match strategy {
                ProbeStrategy::Deterministic => {
                    probe::deterministic(graph, path, params, weight, ws, acc, stats)?;
                }
                ProbeStrategy::Randomized => {
                    // w independent probes, each carrying weight/w.
                    let per = weight / w as f64;
                    for _ in 0..w {
                        probe::randomized(graph, path, params, per, ws, acc, stats, rng)?;
                    }
                }
                ProbeStrategy::Hybrid => {
                    probe::hybrid(
                        graph, path, params, weight, w as usize, c0, ws, acc, stats, rng,
                    )?;
                }
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;
    use probesim_graph::toy::{toy_graph, A, D, TABLE2, TOY_DECAY};
    use probesim_graph::{CsrGraph, DynamicGraph};

    fn toy_config(epsilon: f64) -> ProbeSimConfig {
        ProbeSimConfig::new(TOY_DECAY, epsilon, 0.01).with_seed(0xBEEF)
    }

    #[test]
    fn toy_graph_single_source_matches_table2() {
        let g = toy_graph();
        let engine = ProbeSim::new(toy_config(0.05));
        let result = engine.single_source(&g, A);
        for (v, &expected) in TABLE2.iter().enumerate() {
            let err = (result.scores[v] - expected).abs();
            assert!(
                err <= 0.05,
                "node {v}: estimate {} vs table {expected} (err {err})",
                result.scores[v],
            );
        }
        assert_eq!(result.score(A), 1.0);
    }

    #[test]
    fn all_strategies_agree_within_epsilon() {
        let g = toy_graph();
        for strategy in [
            ProbeStrategy::Deterministic,
            ProbeStrategy::Randomized,
            ProbeStrategy::Hybrid,
        ] {
            let mut cfg = toy_config(0.06);
            cfg.optimizations.strategy = strategy;
            let result = ProbeSim::new(cfg).single_source(&g, A);
            for (v, &expected) in TABLE2.iter().enumerate() {
                let err = (result.scores[v] - expected).abs();
                assert!(err <= 0.06, "{strategy:?} node {v}: err {err}");
            }
        }
    }

    #[test]
    fn batched_and_unbatched_agree() {
        // Pinned to the legacy per-prefix path: this is the Algorithm 3
        // (trie batching) vs Algorithm 1 equivalence. The fused engine's
        // own equivalence properties live in tests/fused_probe.rs.
        let g = toy_graph();
        let mut cfg = toy_config(0.05);
        cfg.optimizations.strategy = ProbeStrategy::Deterministic;
        cfg.optimizations.batch_walks = true;
        cfg.optimizations.fuse_probes = false;
        let batched = ProbeSim::new(cfg.clone()).single_source(&g, A);
        cfg.optimizations.batch_walks = false;
        let unbatched = ProbeSim::new(cfg).single_source(&g, A);
        // Same seed => same walks => identical deterministic estimates.
        for v in 0..8 {
            assert!(
                (batched.scores[v] - unbatched.scores[v]).abs() < 1e-9,
                "node {v}: {} vs {}",
                batched.scores[v],
                unbatched.scores[v]
            );
        }
        assert!(batched.stats.trie_prefixes > 0);
        assert!(batched.stats.probes <= unbatched.stats.probes);
    }

    #[test]
    fn basic_unoptimized_configuration_works() {
        let g = toy_graph();
        let cfg = toy_config(0.08).with_optimizations(Optimizations::basic());
        let result = ProbeSim::new(cfg).single_source(&g, A);
        for (v, &expected) in TABLE2.iter().enumerate() {
            assert!((result.scores[v] - expected).abs() <= 0.08, "node {v}");
        }
        assert_eq!(result.stats.trie_prefixes, 0);
        assert_eq!(result.stats.truncated_walks, 0);
    }

    #[test]
    fn top_k_finds_d_first_on_toy_graph() {
        // Table 2: d (0.131) is the most similar node to a.
        let g = toy_graph();
        let top = ProbeSim::new(toy_config(0.03)).top_k(&g, A, 3);
        assert_eq!(top[0].0, D);
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let g = toy_graph();
        let engine = ProbeSim::new(toy_config(0.1));
        let a = engine.single_source(&g, A);
        let b = engine.single_source(&g, A);
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn different_seeds_give_different_estimates() {
        let g = toy_graph();
        let a = ProbeSim::new(toy_config(0.1).with_seed(1)).single_source(&g, A);
        let b = ProbeSim::new(toy_config(0.1).with_seed(2)).single_source(&g, A);
        assert_ne!(a.scores, b.scores);
    }

    #[test]
    fn wrapper_matches_dense_reference_bitwise() {
        // The session-backed wrapper and the legacy dense path must be
        // indistinguishable, not merely close.
        let g = toy_graph();
        for strategy in [
            ProbeStrategy::Deterministic,
            ProbeStrategy::Randomized,
            ProbeStrategy::Hybrid,
        ] {
            for batch in [false, true] {
                let mut cfg = toy_config(0.06);
                cfg.optimizations.strategy = strategy;
                cfg.optimizations.batch_walks = batch;
                let engine = ProbeSim::new(cfg);
                let wrapped = engine.single_source(&g, A);
                let reference = engine.single_source_dense_reference(&g, A);
                assert_eq!(wrapped.scores, reference.scores, "{strategy:?}/{batch}");
                assert_eq!(wrapped.stats, reference.stats, "{strategy:?}/{batch}");
            }
        }
    }

    #[test]
    fn works_on_dynamic_graph_and_tracks_updates() {
        // Remove every edge into/out of g's community and verify scores
        // react: an isolated query node has similarity 0 to everyone.
        let mut g = DynamicGraph::from_edges(8, &probesim_graph::toy::toy_edges());
        let engine = ProbeSim::new(toy_config(0.05));
        let before = engine.single_source(&g, A);
        assert!(before.scores[D as usize] > 0.05);
        // Cut a's in-edges: s(a, v) = 0 for all v != a.
        g.remove_edge(probesim_graph::toy::B, A);
        g.remove_edge(probesim_graph::toy::C, A);
        let after = engine.single_source(&g, A);
        for v in 1..8 {
            assert!(
                after.scores[v] <= 0.02,
                "node {v} still has score {} after isolation",
                after.scores[v]
            );
        }
    }

    #[test]
    fn query_on_node_without_in_edges_returns_zeros() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2)]);
        let result = ProbeSim::new(toy_config(0.1)).single_source(&g, 0);
        assert_eq!(result.scores[1], 0.0);
        assert_eq!(result.scores[2], 0.0);
        assert_eq!(result.scores[0], 1.0);
    }

    #[test]
    fn compensation_shifts_estimates_up() {
        let g = toy_graph();
        let mut cfg = toy_config(0.1);
        cfg.optimizations.truncation_compensation = true;
        let comp = ProbeSim::new(cfg.clone()).single_source(&g, A);
        cfg.optimizations.truncation_compensation = false;
        let plain = ProbeSim::new(cfg).single_source(&g, A);
        // Compensated runs use a different εt (2× share) so walks differ;
        // just verify the additive shift exists on zero-score nodes.
        let zero_nodes: Vec<usize> = (1..8).filter(|&v| plain.scores[v] == 0.0).collect();
        for v in zero_nodes {
            assert!(comp.scores[v] > 0.0, "node {v} not compensated");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_query() {
        let g = toy_graph();
        let _ = ProbeSim::new(toy_config(0.1)).single_source(&g, 99);
    }

    #[test]
    fn try_variants_return_errors_instead_of_panicking() {
        let g = toy_graph();
        let engine = ProbeSim::new(toy_config(0.1));
        assert!(matches!(
            engine.try_single_source(&g, 99),
            Err(QueryError::NodeOutOfRange {
                node: 99,
                num_nodes: 8
            })
        ));
        // k = 0 keeps legacy wrapper semantics: empty ranking, validated
        // node; the strict Query::TopK surface still rejects it.
        assert_eq!(engine.try_top_k(&g, A, 0), Ok(Vec::new()));
        assert!(engine.top_k(&g, A, 0).is_empty());
        assert!(matches!(
            engine.try_top_k(&g, 99, 0),
            Err(QueryError::NodeOutOfRange { node: 99, .. })
        ));
        assert!(engine.try_single_source(&g, A).is_ok());
    }
}
