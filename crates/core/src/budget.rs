//! Cooperative cancellation: per-query deadlines and work caps.
//!
//! ProbeSim is index-free, so a query's cost is decided *while it runs* —
//! the walk set and probe frontiers depend on the graph region around the
//! query node. A serving tier (see the `probesim-service` crate) therefore
//! cannot bound tail latency by admission control alone: a query that
//! looked cheap can hit a dense region and blow its latency budget
//! mid-probe. [`ProbeBudget`] is the cancellation primitive that fixes
//! this: a cheap check threaded into the level-expansion sites of both
//! probe engines (the legacy per-prefix paths in [`crate::probe`] and the
//! fused sweep in [`crate::frontier`]) plus the walk-sampling loops, so a
//! query whose **deadline** passes or whose **work cap** (in
//! [`QueryStats::total_work`] units) is exhausted aborts between
//! expansions — never mid-expansion, never by panicking, and always
//! leaving the pooled session scratch reusable (the session drains the
//! workspace and accumulator back to their clean invariant on abort; see
//! `QuerySession::run_with_budget`).
//!
//! Work-cap aborts are **deterministic** given `(graph, config, seed)`:
//! the counters the cap is compared against are pure functions of the
//! execution, so the same query aborts at the same expansion everywhere.
//! Deadline aborts are wall-clock and therefore not reproducible — but
//! abort *safety* (session reusable, next answer bit-identical to a fresh
//! session) holds for both, which is what the property tests pin down.
//!
//! The deadline check amortizes its `Instant::now()` call: the clock is
//! only consulted every [`TIME_CHECK_STRIDE`] work units, so arming a
//! deadline costs a counter comparison per expansion, not a syscall.

use std::time::{Duration, Instant};

use crate::result::QueryStats;

/// How many [`QueryStats::total_work`] units may elapse between two
/// wall-clock reads when a deadline is armed. At typical expansion rates
/// (tens of nanoseconds per work unit) this bounds deadline overshoot to
/// well under a millisecond while keeping `Instant::now()` off the hot
/// path.
pub const TIME_CHECK_STRIDE: u64 = 4096;

/// Why a budgeted query was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline,
    /// The work cap was exhausted.
    Work,
}

/// A per-query execution budget: an optional wall-clock deadline and an
/// optional cap on [`QueryStats::total_work`].
///
/// The default ([`ProbeBudget::unlimited`]) never aborts and its check
/// compiles down to two `None` tests, so unbudgeted queries pay nothing
/// measurable for the cancellation plumbing.
///
/// ```
/// use std::time::Duration;
/// use probesim_core::{ProbeBudget, ProbeSim, ProbeSimConfig, Query, QueryError};
/// use probesim_graph::toy::{toy_graph, A, TOY_DECAY};
///
/// let graph = toy_graph();
/// let engine = ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, 0.05, 0.01).with_seed(7));
/// let mut session = engine.session(&graph);
///
/// // A pre-expired deadline aborts cooperatively with partial stats…
/// let err = session
///     .run_with_budget(
///         Query::SingleSource { node: A },
///         ProbeBudget::unlimited().with_deadline(Duration::ZERO),
///     )
///     .unwrap_err();
/// assert!(matches!(err, QueryError::DeadlineExceeded { .. }));
///
/// // …and the session stays fully reusable afterwards.
/// let ok = session.run(Query::SingleSource { node: A })?;
/// assert_eq!(ok.scores.score(A), 1.0);
/// # Ok::<(), probesim_core::QueryError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ProbeBudget {
    deadline: Option<Instant>,
    work_cap: Option<u64>,
    /// Work level at which the clock is next consulted (deadline only).
    next_time_check: u64,
}

impl Default for ProbeBudget {
    fn default() -> Self {
        ProbeBudget::unlimited()
    }
}

impl ProbeBudget {
    /// A budget that never aborts.
    pub fn unlimited() -> Self {
        ProbeBudget {
            deadline: None,
            work_cap: None,
            next_time_check: 0,
        }
    }

    /// Arms a wall-clock deadline `timeout` from now.
    pub fn with_deadline(self, timeout: Duration) -> Self {
        self.with_deadline_at(Instant::now() + timeout)
    }

    /// Arms a wall-clock deadline at an absolute instant (what a service
    /// uses so queue wait counts against the caller's deadline).
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self.next_time_check = 0;
        self
    }

    /// Arms a cap on [`QueryStats::total_work`]. Deterministic given
    /// `(graph, config, seed)`.
    pub fn with_work_cap(mut self, cap: u64) -> Self {
        self.work_cap = Some(cap);
        self
    }

    /// True when neither a deadline nor a work cap is armed.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.work_cap.is_none()
    }

    /// The armed deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The armed work cap, if any.
    pub fn work_cap(&self) -> Option<u64> {
        self.work_cap
    }

    /// The cooperative cancellation point: called by the probe engines
    /// between expansions with the query's live counters.
    ///
    /// Cheap by construction — a work-cap comparison, and a clock read at
    /// most once per [`TIME_CHECK_STRIDE`] work units.
    #[inline]
    pub fn check(&mut self, stats: &QueryStats) -> Result<(), BudgetExceeded> {
        let work = stats.total_work() as u64;
        if let Some(cap) = self.work_cap {
            if work > cap {
                return Err(BudgetExceeded::Work);
            }
        }
        if let Some(deadline) = self.deadline {
            if work >= self.next_time_check {
                self.next_time_check = work + TIME_CHECK_STRIDE;
                if Instant::now() >= deadline {
                    return Err(BudgetExceeded::Deadline);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with_work(work: usize) -> QueryStats {
        QueryStats {
            walk_nodes: work,
            ..QueryStats::default()
        }
    }

    #[test]
    fn unlimited_budget_never_aborts() {
        let mut budget = ProbeBudget::unlimited();
        assert!(budget.is_unlimited());
        for work in [0, 1, usize::MAX / 2] {
            assert_eq!(budget.check(&stats_with_work(work)), Ok(()));
        }
    }

    #[test]
    fn work_cap_trips_deterministically() {
        let mut budget = ProbeBudget::unlimited().with_work_cap(100);
        assert!(!budget.is_unlimited());
        assert_eq!(budget.work_cap(), Some(100));
        assert_eq!(budget.check(&stats_with_work(100)), Ok(()));
        assert_eq!(
            budget.check(&stats_with_work(101)),
            Err(BudgetExceeded::Work)
        );
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let mut budget = ProbeBudget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(
            budget.check(&stats_with_work(0)),
            Err(BudgetExceeded::Deadline)
        );
    }

    #[test]
    fn distant_deadline_passes_and_amortizes_clock_reads() {
        let mut budget = ProbeBudget::unlimited().with_deadline(Duration::from_secs(3600));
        // First check consults the clock and schedules the next read a
        // stride away; intermediate work levels pass without a read.
        assert_eq!(budget.check(&stats_with_work(0)), Ok(()));
        assert_eq!(budget.next_time_check, TIME_CHECK_STRIDE);
        assert_eq!(budget.check(&stats_with_work(10)), Ok(()));
        assert_eq!(budget.next_time_check, TIME_CHECK_STRIDE);
        let big = TIME_CHECK_STRIDE as usize + 1;
        assert_eq!(budget.check(&stats_with_work(big)), Ok(()));
        assert!(budget.next_time_check > TIME_CHECK_STRIDE);
    }

    #[test]
    fn deadline_at_respects_absolute_instants() {
        let past = Instant::now() - Duration::from_millis(1);
        let mut budget = ProbeBudget::unlimited().with_deadline_at(past);
        assert_eq!(budget.deadline(), Some(past));
        assert_eq!(
            budget.check(&QueryStats::default()),
            Err(BudgetExceeded::Deadline)
        );
    }

    #[test]
    fn both_limits_work_cap_checked_first() {
        // With both armed and both exceeded, the deterministic signal
        // (work) wins — services prefer reproducible error causes.
        let mut budget = ProbeBudget::unlimited()
            .with_work_cap(5)
            .with_deadline(Duration::ZERO);
        assert_eq!(budget.check(&stats_with_work(6)), Err(BudgetExceeded::Work));
    }
}
