//! The session-based query API: pooled execution contexts, sparse
//! results, fallible errors, and batch/parallel drivers.
//!
//! ProbeSim is index-free, so the only per-query state is *scratch*:
//! the PROBE workspace, the score accumulator and the RNG stream. The
//! original one-shot API allocated all of it — `O(n)` — on every call
//! and returned a dense length-`n` vector, which is exactly the wrong
//! shape for a query service on a web-scale graph where one query
//! touches a tiny neighborhood (compare SLING, arXiv:2002.08082, and
//! PRSim, arXiv:1905.02354, which both return sparse estimates).
//!
//! A [`QuerySession`] binds an engine to a graph and owns that scratch:
//!
//! * the [`crate::workspace::ProbeWorkspace`] frontier buffers and the
//!   [`SparseAccumulator`] score slab are allocated when the session is
//!   created and reset in O(touched) afterwards — repeated queries
//!   perform **zero heap allocation proportional to `n`**;
//! * results come back as [`SparseScores`] — only the touched
//!   `(node, score)` pairs, `O(touched)` memory — with dense
//!   ([`SparseScores::to_dense`]) and ranked ([`SparseScores::top_k`])
//!   views on demand;
//! * invalid queries surface as [`QueryError`] values instead of panics;
//! * [`QuerySession::run_batch`] executes a query list sequentially on
//!   one session, and [`ProbeSim::par_batch`] shards a list across
//!   per-thread sessions, returning outputs in input order with merged
//!   [`QueryStats`].
//!
//! Determinism: the RNG stream for a query is derived from
//! `(config.seed, query node)`, so a query's answer is identical whether
//! it runs on a fresh engine, a reused session, or any thread of a
//! parallel batch.

use probesim_graph::{GraphView, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::accum::SparseAccumulator;
use crate::budget::{BudgetExceeded, ProbeBudget};
use crate::probe::ProbeParams;
use crate::result::{QueryStats, SingleSourceResult};
use crate::single_source::ProbeSim;
use crate::workspace::{ProbeWorkspace, SweepPolicy};
use crate::ProbeSimConfig;

/// The sweep policy a session derives from its engine configuration:
/// parallel intra-query expansion is opt-in
/// ([`crate::Optimizations::parallel_sweep`]), and the thread budget is
/// resolved once at session creation so every query of the session uses
/// the same partitioning.
fn sweep_policy(config: &ProbeSimConfig) -> SweepPolicy {
    let opts = &config.optimizations;
    if opts.parallel_sweep {
        SweepPolicy {
            parallel: true,
            threads: opts.resolved_sweep_threads(),
        }
    } else {
        SweepPolicy::sequential()
    }
}

/// The per-query RNG: seeded from the engine seed and the query node, so
/// repeated identical queries return identical estimates regardless of
/// execution order or thread placement.
pub(crate) fn query_rng(seed: u64, u: NodeId) -> StdRng {
    StdRng::seed_from_u64(seed ^ (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A SimRank query against one graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// Estimate `s(u, v)` for every touched `v` (Definition 1).
    SingleSource {
        /// The query node `u`.
        node: NodeId,
    },
    /// The `k` nodes most similar to `u` (Definition 2).
    TopK {
        /// The query node `u`.
        node: NodeId,
        /// How many neighbors to return; must be ≥ 1.
        k: usize,
    },
    /// Every node with estimated similarity above `tau`.
    Threshold {
        /// The query node `u`.
        node: NodeId,
        /// The score cutoff; must be finite and ≥ 0.
        tau: f64,
    },
}

impl Query {
    /// The query node `u`.
    #[inline]
    pub fn node(&self) -> NodeId {
        match *self {
            Query::SingleSource { node }
            | Query::TopK { node, .. }
            | Query::Threshold { node, .. } => node,
        }
    }
}

/// Why a query was rejected before execution — or aborted cooperatively
/// mid-execution by an armed [`ProbeBudget`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryError {
    /// The query node is not a valid id for this graph.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The graph's node count `n` (valid ids are `0..n`).
        num_nodes: usize,
    },
    /// The graph has no nodes at all.
    EmptyGraph,
    /// A top-k query asked for zero results.
    InvalidK {
        /// The rejected `k`.
        k: usize,
    },
    /// A threshold query passed a non-finite or negative cutoff.
    InvalidThreshold {
        /// The rejected `tau`.
        tau: f64,
    },
    /// The graph's node count changed after the session was created.
    ///
    /// A [`QuerySession`]'s workspace and accumulator slabs are sized for
    /// the node count at construction. `DynamicGraph::add_nodes` (reached
    /// through interior mutability or a fresh borrow between sessions'
    /// lifetimes being juggled by a wrapper type) can grow `n` past that
    /// size; executing anyway would index out of bounds. Rebuild the
    /// session against the resized graph instead.
    ///
    /// Structurally impossible for graphs with
    /// [`GraphView::STABLE_NODE_COUNT`] — a session bound to a
    /// `CsrGraph` or an owned `GraphSnapshot` skips the guard at compile
    /// time and can never return this variant.
    GraphResized {
        /// Node count the session's scratch was sized for.
        session_nodes: usize,
        /// The graph's node count now.
        graph_nodes: usize,
    },
    /// The query's wall-clock deadline passed mid-execution
    /// ([`QuerySession::run_with_budget`] with an armed deadline).
    ///
    /// The abort is cooperative: the probe engines stop between level
    /// expansions, the session drains its pooled scratch back to the
    /// clean invariant, and the next query on the same session is
    /// bit-identical to one on a fresh session (property-tested). No
    /// partial scores are returned — a truncated estimate has no error
    /// guarantee — but the counters accumulated up to the abort are.
    DeadlineExceeded {
        /// Work counters at the abort point.
        partial: QueryStats,
    },
    /// The query's work cap ([`ProbeBudget::with_work_cap`], in
    /// [`QueryStats::total_work`] units) was exhausted mid-execution.
    ///
    /// Unlike [`QueryError::DeadlineExceeded`] this abort is
    /// **deterministic** given `(graph, config, seed)` — the same query
    /// aborts at the same expansion on every machine. Same abort-safety
    /// contract: the session stays reusable, `partial` carries the work
    /// done.
    WorkBudgetExceeded {
        /// Work counters at the abort point.
        partial: QueryStats,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            QueryError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "query node {node} out of range (n = {num_nodes})")
            }
            QueryError::EmptyGraph => write!(f, "cannot query an empty graph (n = 0)"),
            QueryError::InvalidK { k } => {
                write!(f, "top-k query requires k >= 1 (got k = {k})")
            }
            QueryError::InvalidThreshold { tau } => {
                write!(
                    f,
                    "threshold query requires a finite, non-negative tau (got {tau})"
                )
            }
            QueryError::GraphResized {
                session_nodes,
                graph_nodes,
            } => {
                write!(
                    f,
                    "graph grew from {session_nodes} to {graph_nodes} nodes after the \
                     session was created; create a new session for the resized graph"
                )
            }
            QueryError::DeadlineExceeded { partial } => {
                write!(
                    f,
                    "query aborted: deadline exceeded after {} work units \
                     ({} walks, {} probes)",
                    partial.total_work(),
                    partial.walks,
                    partial.probes
                )
            }
            QueryError::WorkBudgetExceeded { partial } => {
                write!(
                    f,
                    "query aborted: work budget exhausted at {} work units \
                     ({} walks, {} probes)",
                    partial.total_work(),
                    partial.walks,
                    partial.probes
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Checks a query against a graph without executing it.
pub fn validate<G: GraphView>(graph: &G, query: &Query) -> Result<(), QueryError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(QueryError::EmptyGraph);
    }
    let node = query.node();
    if node as usize >= n {
        return Err(QueryError::NodeOutOfRange { node, num_nodes: n });
    }
    validate_shape(query)
}

/// The graph-independent half of [`validate`]: rejects malformed query
/// parameters (`k = 0`, non-finite or negative thresholds). The index
/// engine uses it to refuse replaying a cached row for a query the
/// session would reject.
pub(crate) fn validate_shape(query: &Query) -> Result<(), QueryError> {
    match *query {
        Query::TopK { k: 0, .. } => Err(QueryError::InvalidK { k: 0 }),
        Query::Threshold { tau, .. } if !tau.is_finite() || tau < 0.0 => {
            Err(QueryError::InvalidThreshold { tau })
        }
        _ => Ok(()),
    }
}

/// Single-source estimates as touched `(node, score)` pairs.
///
/// Only nodes actually reached by a probe are stored, so the memory
/// footprint is proportional to work done, not to `n`. Untouched nodes
/// implicitly score `baseline` (0.0 normally; `εt/2` when truncation
/// compensation is enabled) and the query node scores 1.0 by definition.
///
/// Entries are sorted by node id; [`SparseScores::score`] is a binary
/// search. [`SparseScores::to_dense`] reproduces the legacy dense vector
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseScores {
    query: NodeId,
    num_nodes: usize,
    baseline: f64,
    /// Raw accumulated scores (baseline not yet applied), sorted by node
    /// id, query node excluded.
    entries: Vec<(NodeId, f64)>,
}

impl SparseScores {
    pub(crate) fn new(
        query: NodeId,
        num_nodes: usize,
        baseline: f64,
        entries: Vec<(NodeId, f64)>,
    ) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        SparseScores {
            query,
            num_nodes,
            baseline,
            entries,
        }
    }

    /// The raw accumulated entries (baseline not applied), sorted by
    /// node id, query node excluded — what the contribution index stores
    /// so a replayed row reconstructs this exact value bit-for-bit.
    pub(crate) fn raw_entries(&self) -> &[(NodeId, f64)] {
        &self.entries
    }

    /// The query node `u`.
    #[inline]
    pub fn query(&self) -> NodeId {
        self.query
    }

    /// The graph's node count at query time.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The implicit score of untouched nodes (nonzero only under
    /// truncation compensation).
    #[inline]
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// Number of touched nodes (query node excluded).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no node besides `u` was reached.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `s̃(u, v)`. Panics when `v` is not a valid node id, mirroring dense
    /// indexing.
    pub fn score(&self, v: NodeId) -> f64 {
        assert!(
            (v as usize) < self.num_nodes,
            "node {v} out of range (n = {})",
            self.num_nodes
        );
        if v == self.query {
            return 1.0;
        }
        match self.entries.binary_search_by_key(&v, |e| e.0) {
            Ok(i) => self.apply_baseline(self.entries[i].1),
            Err(_) => self.baseline,
        }
    }

    #[inline]
    fn apply_baseline(&self, raw: f64) -> f64 {
        // Skip the add when the baseline is zero so `raw` passes through
        // bit-for-bit (matching the dense path, which only adds the
        // compensation term when it is enabled).
        if self.baseline != 0.0 {
            raw + self.baseline
        } else {
            raw
        }
    }

    /// Iterates the touched `(node, score)` pairs in ascending node order,
    /// scores final (baseline applied), query node excluded.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.entries
            .iter()
            .map(move |&(v, raw)| (v, self.apply_baseline(raw)))
    }

    /// The `k` highest-scoring nodes (excluding `u`), descending, ties
    /// broken by node id — the same ranking
    /// [`crate::top_k_from_scores`] produces on the dense vector.
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        let k = k.min(self.num_nodes.saturating_sub(1));
        if k == 0 {
            return Vec::new();
        }
        let mut ranked: Vec<(NodeId, f64)> = self.iter().collect();
        ranked.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("invariant: SimRank scores are never NaN")
                .then_with(|| a.0.cmp(&b.0))
        });
        if ranked.len() >= k {
            ranked.truncate(k);
            return ranked;
        }
        // Fewer touched nodes than k: pad with untouched nodes at the
        // baseline score, ascending id (the dense ranking's tie-break).
        let mut padded = ranked;
        for v in 0..self.num_nodes as NodeId {
            if padded.len() == k {
                break;
            }
            if v == self.query || self.entries.binary_search_by_key(&v, |e| e.0).is_ok() {
                continue;
            }
            padded.push((v, self.baseline));
        }
        padded
    }

    /// Nodes with estimate strictly above `tau` (excluding `u`),
    /// unordered — the sparse counterpart of
    /// [`SingleSourceResult::above_threshold`]. Includes untouched nodes
    /// when the compensation baseline itself exceeds `tau`.
    pub fn above_threshold(&self, tau: f64) -> Vec<(NodeId, f64)> {
        if self.baseline > tau {
            // Every non-query node qualifies; materialize the dense view.
            let mut all: Vec<(NodeId, f64)> = Vec::with_capacity(self.num_nodes - 1);
            let mut next_entry = 0;
            for v in 0..self.num_nodes as NodeId {
                if v == self.query {
                    continue;
                }
                let score = if next_entry < self.entries.len() && self.entries[next_entry].0 == v {
                    let raw = self.entries[next_entry].1;
                    next_entry += 1;
                    self.apply_baseline(raw)
                } else {
                    self.baseline
                };
                all.push((v, score));
            }
            return all;
        }
        self.iter().filter(|&(_, s)| s > tau).collect()
    }

    /// Materializes the legacy dense vector: `scores[v] = s̃(u, v)` for
    /// every `v`, `scores[u] = 1.0`. Bit-for-bit identical to what the
    /// original dense pipeline produced.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut dense = vec![self.baseline; self.num_nodes];
        for &(v, raw) in &self.entries {
            dense[v as usize] = self.apply_baseline(raw);
        }
        dense[self.query as usize] = 1.0;
        dense
    }
}

/// The answer to one [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// The query that produced this output.
    pub query: Query,
    /// Sparse single-source estimates (every query kind computes them).
    pub scores: SparseScores,
    /// Execution counters for this query alone.
    pub stats: QueryStats,
}

impl QueryOutput {
    /// The ranked result list this query asked for:
    ///
    /// * `SingleSource` — every touched node, descending by score;
    /// * `TopK { k }` — the top `k`;
    /// * `Threshold { tau }` — every node above `tau`, descending.
    pub fn ranking(&self) -> Vec<(NodeId, f64)> {
        match self.query {
            Query::SingleSource { .. } => self.scores.top_k(self.scores.len()),
            Query::TopK { k, .. } => self.scores.top_k(k),
            Query::Threshold { tau, .. } => {
                let mut hits = self.scores.above_threshold(tau);
                hits.sort_unstable_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .expect("invariant: SimRank scores are never NaN")
                        .then_with(|| a.0.cmp(&b.0))
                });
                hits
            }
        }
    }

    /// Converts into the legacy dense [`SingleSourceResult`] view.
    pub fn into_single_source(self) -> SingleSourceResult {
        SingleSourceResult {
            query: self.scores.query(),
            scores: self.scores.to_dense(),
            stats: self.stats,
        }
    }
}

/// The answer to a batch of queries.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// One output per input query, in input order.
    pub outputs: Vec<QueryOutput>,
    /// Counters merged across the whole batch.
    pub stats: QueryStats,
}

/// A reusable, graph-bound execution context.
///
/// Owns the pooled [`ProbeWorkspace`], the sparse score accumulator and
/// the per-query RNG derivation. The first query allocates the `O(n)`
/// scratch; every later query resets it with a version-stamp bump —
/// no reallocation, no `O(n)` clearing.
///
/// The session holds its graph **by value**: `engine.session(&graph)`
/// binds a borrow (the classic mode), while
/// `engine.session(store.snapshot())` binds an *owned*
/// `GraphSnapshot` — an `'static` session that can move to another
/// thread and outlive the store that published it. Because a snapshot's
/// node count is fixed ([`GraphView::STABLE_NODE_COUNT`]), the
/// [`QueryError::GraphResized`] guard compiles away on that path.
///
/// ```
/// use probesim_core::{ProbeSim, ProbeSimConfig, Query};
/// use probesim_graph::toy::{toy_graph, A, D, TOY_DECAY};
/// use probesim_graph::GraphView;
///
/// let graph = toy_graph();
/// let engine = ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, 0.05, 0.01).with_seed(7));
/// let mut session = engine.session(&graph);
/// let out = session.run(Query::TopK { node: A, k: 1 })?;
/// assert_eq!(out.ranking()[0].0, D);
/// // The next query on the same session reuses all scratch memory.
/// let again = session.run(Query::SingleSource { node: A })?;
/// assert!(again.scores.len() < graph.num_nodes());
/// # Ok::<(), probesim_core::QueryError>(())
/// ```
pub struct QuerySession<G: GraphView> {
    engine: ProbeSim,
    graph: G,
    /// Node count the scratch slabs were sized for; re-checked against the
    /// graph on every `run` (see [`QueryError::GraphResized`]) unless the
    /// graph type guarantees a stable count.
    session_nodes: usize,
    ws: ProbeWorkspace,
    acc: SparseAccumulator,
    total_stats: QueryStats,
    queries_run: usize,
    /// Touched count of the previous query — capacity hint for the next
    /// drain, so steady-state queries do one exact output allocation.
    last_touched: usize,
}

// `Sync` because the fused sweep may fan a frontier out across scoped
// worker threads that share the graph borrow (see
// [`crate::Optimizations::parallel_sweep`]); every graph type in this
// workspace is `Sync`.
impl<G: GraphView + Sync> QuerySession<G> {
    /// Binds `engine`'s configuration to `graph` (a borrow or an owned
    /// view — see [`ProbeSim::session`]). Scratch buffers are sized for
    /// the graph's current node count; if the graph's `n` grows
    /// afterwards (e.g. `DynamicGraph::add_nodes` reached through a
    /// wrapper with interior mutability), `run` reports
    /// [`QueryError::GraphResized`] instead of indexing out of bounds.
    pub fn new(engine: &ProbeSim, graph: G) -> Self {
        let n = graph.num_nodes();
        let mut ws = ProbeWorkspace::new(n);
        ws.sweep = sweep_policy(engine.config());
        ws.remap = graph.node_remap().cloned();
        QuerySession {
            engine: engine.clone(),
            graph,
            session_nodes: n,
            ws,
            acc: SparseAccumulator::new(n),
            total_stats: QueryStats::default(),
            queries_run: 0,
            last_touched: 0,
        }
    }

    /// The graph this session queries.
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// The engine configuration this session runs with.
    pub fn config(&self) -> &ProbeSimConfig {
        self.engine.config()
    }

    /// How many queries this session has executed.
    pub fn queries_run(&self) -> usize {
        self.queries_run
    }

    /// Counters merged over every query this session has executed.
    pub fn total_stats(&self) -> &QueryStats {
        &self.total_stats
    }

    /// Executes one query.
    ///
    /// Estimates are identical to [`ProbeSim::single_source`] with the
    /// same seed: the RNG stream is derived per query, so session reuse
    /// never changes an answer.
    pub fn run(&mut self, query: Query) -> Result<QueryOutput, QueryError> {
        self.check_unresized()?;
        validate(&self.graph, &query)?;
        Ok(self.run_validated(query))
    }

    /// [`QuerySession::run`] with an external RNG (for harnesses that
    /// manage their own seed streams).
    pub fn run_with_rng<R: Rng>(
        &mut self,
        query: Query,
        rng: &mut R,
    ) -> Result<QueryOutput, QueryError> {
        self.check_unresized()?;
        validate(&self.graph, &query)?;
        Ok(self.execute(query, rng))
    }

    /// [`QuerySession::run`] under a cooperative [`ProbeBudget`]: the
    /// probe engines check the budget between level expansions, and an
    /// exceeded deadline or work cap surfaces as
    /// [`QueryError::DeadlineExceeded`] /
    /// [`QueryError::WorkBudgetExceeded`] carrying the partial counters.
    ///
    /// **Abort safety:** an aborted query leaves the session fully
    /// reusable — the pooled workspace and accumulator are drained back
    /// to their clean invariant before the error returns, so the next
    /// query on this session is bit-identical to one on a fresh session
    /// (the per-query RNG derivation never depended on session history).
    pub fn run_with_budget(
        &mut self,
        query: Query,
        budget: ProbeBudget,
    ) -> Result<QueryOutput, QueryError> {
        self.check_unresized()?;
        validate(&self.graph, &query)?;
        let mut rng = query_rng(self.engine.config().seed, query.node());
        self.execute_budgeted(query, &mut rng, budget)
    }

    /// Rebinds this session to another graph, **keeping the pooled
    /// scratch** when the node counts match (the serving fast path: a
    /// worker hopping between `GraphSnapshot` versions of one store pays
    /// zero reallocation, because a store's `n` is pinned to its base).
    /// A different node count re-allocates the slabs for the new size.
    ///
    /// Cumulative counters ([`QuerySession::total_stats`],
    /// [`QuerySession::queries_run`]) carry over — they describe the
    /// session, not the graph.
    pub fn rebind<H: GraphView>(self, graph: H) -> QuerySession<H> {
        let n = graph.num_nodes();
        let (mut ws, acc, last_touched) = if n == self.session_nodes {
            (self.ws, self.acc, self.last_touched)
        } else {
            (ProbeWorkspace::new(n), SparseAccumulator::new(n), 0)
        };
        // The sweep policy follows the engine (unchanged here), the
        // relabeling follows the graph: a rebind across snapshot versions
        // of one degree-ordered store refreshes the remap handle.
        ws.sweep = sweep_policy(self.engine.config());
        ws.remap = graph.node_remap().cloned();
        QuerySession {
            engine: self.engine,
            graph,
            session_nodes: n,
            ws,
            acc,
            total_stats: self.total_stats,
            queries_run: self.queries_run,
            last_touched,
        }
    }

    /// Executes a batch sequentially on this session, reusing scratch
    /// across all queries. The whole batch is validated up front, so a
    /// bad query is reported before any work runs.
    pub fn run_batch(&mut self, queries: &[Query]) -> Result<BatchOutput, QueryError> {
        self.check_unresized()?;
        for query in queries {
            validate(&self.graph, query)?;
        }
        Ok(self.run_batch_validated(queries))
    }

    /// The scratch slabs index `0..session_nodes`; a graph that grew past
    /// that (only possible through interior mutability behind the shared
    /// borrow) must be rejected before execution, not caught as an
    /// out-of-bounds panic mid-probe. Shrinking cannot happen — the
    /// workspace stays valid for any `n ≤ session_nodes` and node-range
    /// validation uses the *current* count — but a changed count in either
    /// direction means the session no longer matches the graph, so both
    /// directions are rejected for predictability.
    ///
    /// For graph types that declare [`GraphView::STABLE_NODE_COUNT`]
    /// (immutable `CsrGraph`, owned `GraphSnapshot`) the branch below is
    /// resolved at compile time: the guard costs nothing and
    /// [`QueryError::GraphResized`] is unreachable — witnessed by a
    /// `debug_assert` instead of a per-run runtime check.
    fn check_unresized(&self) -> Result<(), QueryError> {
        if G::STABLE_NODE_COUNT {
            debug_assert_eq!(
                self.graph.num_nodes(),
                self.session_nodes,
                "a STABLE_NODE_COUNT graph changed its node count"
            );
            return Ok(());
        }
        let graph_nodes = self.graph.num_nodes();
        if graph_nodes != self.session_nodes {
            return Err(QueryError::GraphResized {
                session_nodes: self.session_nodes,
                graph_nodes,
            });
        }
        Ok(())
    }

    /// Runs a pre-validated query (shared by `run` and `par_batch`).
    fn run_validated(&mut self, query: Query) -> QueryOutput {
        let mut rng = query_rng(self.engine.config().seed, query.node());
        self.execute(query, &mut rng)
    }

    fn run_batch_validated(&mut self, queries: &[Query]) -> BatchOutput {
        let mut stats = QueryStats::default();
        let outputs: Vec<QueryOutput> = queries
            .iter()
            .map(|&query| {
                let out = self.run_validated(query);
                stats.merge(&out.stats);
                out
            })
            .collect();
        BatchOutput { outputs, stats }
    }

    /// The core execution path: pooled workspace + sparse accumulator.
    fn execute<R: Rng>(&mut self, query: Query, rng: &mut R) -> QueryOutput {
        self.execute_budgeted(query, rng, ProbeBudget::unlimited())
            .expect("invariant: an unlimited budget cannot abort")
    }

    /// [`QuerySession::execute`] under a cancellation budget. On abort,
    /// the **drain-to-clean invariant survives**: the partial
    /// contributions the aborted probes left in the pooled accumulator
    /// and workspace are discarded in O(touched), restoring exactly the
    /// state a fresh query expects.
    fn execute_budgeted<R: Rng>(
        &mut self,
        query: Query,
        rng: &mut R,
        probe_budget: ProbeBudget,
    ) -> Result<QueryOutput, QueryError> {
        let u_ext = query.node();
        // Under a degree-ordered relabeling the probe engines run in the
        // graph's storage id space; the query node is translated on the
        // way in and touched entries on the way out. The per-query RNG is
        // seeded with the *external* id upstream, so an answer is
        // identical with and without relabeling.
        let u = match self.graph.node_remap() {
            Some(r) => r.internal(u_ext),
            None => u_ext,
        };
        let n = self.graph.num_nodes();
        let config = self.engine.config();
        let budget = config.budget();
        let nr = config.num_walks(n).max(1);
        let params = ProbeParams {
            sqrt_c: config.sqrt_decay(),
            epsilon_p: budget.pruning,
        };
        let mut stats = QueryStats::default();
        // Arm the budget for this query only; the workspace reverts to
        // unlimited below so a later plain `run` is never throttled.
        self.ws.budget = probe_budget;
        let run = if config.optimizations.batch_walks {
            self.engine.run_batched(
                &self.graph,
                u,
                nr,
                &params,
                budget.walk_cap,
                &mut self.ws,
                &mut self.acc,
                &mut stats,
                rng,
            )
        } else {
            self.engine.run_unbatched(
                &self.graph,
                u,
                nr,
                &params,
                budget.walk_cap,
                &mut self.ws,
                &mut self.acc,
                &mut stats,
                rng,
            )
        };
        self.ws.budget = ProbeBudget::unlimited();
        if let Err(exceeded) = run {
            // Abort cleanup: level buffers are version-stamp cleared and
            // the accumulator's partial scores drained away, restoring
            // the clean-slab invariant the next query relies on. Totals
            // still count the aborted work — it was really spent.
            self.ws.reset();
            self.acc.reset();
            self.total_stats.merge(&stats);
            return Err(match exceeded {
                BudgetExceeded::Deadline => QueryError::DeadlineExceeded { partial: stats },
                BudgetExceeded::Work => QueryError::WorkBudgetExceeded { partial: stats },
            });
        }
        let baseline = if config.optimizations.truncation_compensation && budget.truncation > 0.0 {
            budget.truncation / 2.0
        } else {
            0.0
        };
        // Drain extracts the touched entries in ascending node order and
        // restores the accumulator's clean invariant in the same pass.
        let mut entries: Vec<(NodeId, f64)> = Vec::with_capacity(self.last_touched);
        self.acc.drain_into(u, &mut entries);
        if let Some(r) = self.graph.node_remap() {
            // Back to external ids; the drain order was ascending in
            // storage space, so restore the sparse-result sort contract.
            for e in &mut entries {
                e.0 = r.external(e.0);
            }
            entries.sort_unstable_by_key(|e| e.0);
        }
        self.last_touched = entries.len();
        self.total_stats.merge(&stats);
        self.queries_run += 1;
        Ok(QueryOutput {
            query,
            scores: SparseScores::new(u_ext, n, baseline, entries),
            stats,
        })
    }
}

impl<G: GraphView> std::fmt::Debug for QuerySession<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerySession")
            .field("config", self.engine.config())
            .field("num_nodes", &self.graph.num_nodes())
            .field("queries_run", &self.queries_run)
            .finish_non_exhaustive()
    }
}

impl ProbeSim {
    /// Creates a reusable [`QuerySession`] bound to `graph`.
    ///
    /// `graph` is held by value, so both modes work through the one
    /// entry point:
    ///
    /// * `engine.session(&graph)` — borrow a `CsrGraph` /
    ///   `DynamicGraph` (the classic mode; the borrow checker keeps the
    ///   graph alive and un-mutated for the session's lifetime);
    /// * `engine.session(store.snapshot())` — own a
    ///   `GraphSnapshot`: the session is `'static`, can move across
    ///   threads, and can never observe [`QueryError::GraphResized`].
    pub fn session<G: GraphView + Sync>(&self, graph: G) -> QuerySession<G> {
        QuerySession::new(self, graph)
    }

    /// Executes a batch of queries across `threads` worker threads, each
    /// with its own pooled [`QuerySession`]; outputs come back in input
    /// order with merged [`QueryStats`].
    ///
    /// `threads = 0` picks the machine's available parallelism (capped at
    /// 8). Every query is validated before any work starts, and per-query
    /// RNG derivation makes the answers identical to sequential
    /// execution.
    pub fn par_batch<G: GraphView + Sync>(
        &self,
        graph: &G,
        queries: &[Query],
        threads: usize,
    ) -> Result<BatchOutput, QueryError> {
        // A `&G` is itself a Clone + Send GraphView, so the shared-borrow
        // mode is the owned mode instantiated with a borrow: each worker
        // "clones" the reference and pools a session around it.
        self.par_batch_owned(&graph, queries, threads)
    }

    /// [`ProbeSim::par_batch`] in **snapshot-per-thread** mode: every
    /// worker binds its session to its *own clone* of `graph` instead of
    /// a shared borrow.
    ///
    /// Designed for `probesim_graph::GraphSnapshot`, where a clone is
    /// one `Arc` bump: each worker holds an owned, version-pinned view,
    /// so the whole batch answers against one consistent graph version
    /// even while a writer keeps updating the store that published it —
    /// and the per-worker sessions can never return
    /// [`QueryError::GraphResized`]. Answers are bit-for-bit identical
    /// to [`ProbeSim::par_batch`] and to sequential execution (per-query
    /// RNG derivation).
    pub fn par_batch_owned<G: GraphView + Clone + Send + Sync>(
        &self,
        graph: &G,
        queries: &[Query],
        threads: usize,
    ) -> Result<BatchOutput, QueryError> {
        for query in queries {
            validate(graph, query)?;
        }
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(8)
        } else {
            threads
        };
        // One pooled session per worker: scratch is allocated once per
        // thread, not once per query.
        let outputs = crate::par::ordered_map_with(
            queries.len(),
            threads,
            || self.session(graph.clone()),
            |session, i| session.run_validated(queries[i]),
        );
        let mut stats = QueryStats::default();
        for output in &outputs {
            stats.merge(&output.stats);
        }
        Ok(BatchOutput { outputs, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProbeStrategy;
    use probesim_graph::toy::{toy_graph, A, D, TOY_DECAY};
    use probesim_graph::CsrGraph;

    fn engine(epsilon: f64) -> ProbeSim {
        ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, epsilon, 0.01).with_seed(0xBEEF))
    }

    #[test]
    fn session_reuse_matches_fresh_engine() {
        let g = toy_graph();
        let e = engine(0.05);
        let mut session = e.session(&g);
        let first = session.run(Query::SingleSource { node: A }).unwrap();
        let second = session.run(Query::SingleSource { node: D }).unwrap();
        // Two sequential queries on one session == two fresh-engine queries.
        assert_eq!(first.scores.to_dense(), e.single_source(&g, A).scores);
        assert_eq!(second.scores.to_dense(), e.single_source(&g, D).scores);
        assert_eq!(session.queries_run(), 2);
        assert_eq!(
            session.total_stats().walks,
            first.stats.walks + second.stats.walks
        );
    }

    #[test]
    fn repeating_a_query_on_one_session_is_deterministic() {
        let g = toy_graph();
        let mut session = engine(0.1).session(&g);
        let a = session.run(Query::SingleSource { node: A }).unwrap();
        let b = session.run(Query::SingleSource { node: A }).unwrap();
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn sparse_scores_are_sparse() {
        // Star graph: a query on a leaf touches few of the 100 nodes.
        let n = 100u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let mut session =
            ProbeSim::new(crate::ProbeSimConfig::new(0.6, 0.1, 0.01).with_seed(3)).session(&g);
        let out = session.run(Query::SingleSource { node: 1 }).unwrap();
        assert!(out.scores.len() < n as usize);
        let dense = out.scores.to_dense();
        let touched = dense
            .iter()
            .enumerate()
            .filter(|&(v, &s)| v != 1 && s > 0.0)
            .count();
        assert_eq!(out.scores.len(), touched, "entry count == touched nodes");
    }

    #[test]
    fn sparse_accessors_agree_with_dense() {
        let g = toy_graph();
        let mut session = engine(0.05).session(&g);
        let out = session.run(Query::SingleSource { node: A }).unwrap();
        let dense = out.scores.to_dense();
        for v in 0..8u32 {
            assert_eq!(out.scores.score(v).to_bits(), dense[v as usize].to_bits());
        }
        assert_eq!(out.scores.score(A), 1.0);
        // iter() yields exactly the nonzero non-query entries here (no
        // compensation => baseline 0).
        for (v, s) in out.scores.iter() {
            assert_eq!(dense[v as usize].to_bits(), s.to_bits());
            assert_ne!(v, A);
        }
        // top_k matches the dense ranking.
        assert_eq!(out.scores.top_k(3), crate::top_k_from_scores(&dense, A, 3));
    }

    #[test]
    fn top_k_pads_with_untouched_nodes() {
        // Node 0 has one in-neighbor; most nodes are unreachable, so a
        // large k must pad with baseline-scored nodes like the dense path.
        let g = CsrGraph::from_edges(6, &[(1, 0), (1, 2)]);
        let mut session = engine(0.05).session(&g);
        let out = session.run(Query::TopK { node: 0, k: 5 }).unwrap();
        let ranking = out.ranking();
        assert_eq!(ranking.len(), 5);
        let dense = out.scores.to_dense();
        assert_eq!(ranking, crate::top_k_from_scores(&dense, 0, 5));
    }

    #[test]
    fn threshold_query_filters() {
        let g = toy_graph();
        let mut session = engine(0.03).session(&g);
        let out = session.run(Query::Threshold { node: A, tau: 0.1 }).unwrap();
        let ranking = out.ranking();
        assert!(ranking.iter().all(|&(_, s)| s > 0.1));
        // Table 2: d (0.131) is the only node above 0.1.
        assert_eq!(ranking[0].0, D);
        // And against the dense reference filter.
        let dense = out.clone().into_single_source();
        let mut reference = dense.above_threshold(0.1);
        reference
            .sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        assert_eq!(ranking, reference);
    }

    #[test]
    fn compensation_baseline_is_reflected_everywhere() {
        let g = toy_graph();
        let mut cfg = ProbeSimConfig::new(TOY_DECAY, 0.1, 0.01).with_seed(0xBEEF);
        cfg.optimizations.truncation_compensation = true;
        let e = ProbeSim::new(cfg);
        let mut session = e.session(&g);
        let out = session.run(Query::SingleSource { node: A }).unwrap();
        assert!(out.scores.baseline() > 0.0);
        let dense_ref = e.single_source_dense_reference(&g, A);
        assert_eq!(out.scores.to_dense(), dense_ref.scores);
        // Untouched nodes read back the baseline.
        let untouched: Vec<u32> = (0..8u32)
            .filter(|&v| v != A && out.scores.iter().all(|(t, _)| t != v))
            .collect();
        for v in untouched {
            assert_eq!(out.scores.score(v), out.scores.baseline());
        }
    }

    #[test]
    fn validation_covers_every_error_variant() {
        let g = toy_graph();
        let empty = CsrGraph::from_edges(0, &[]);
        assert_eq!(
            validate(&empty, &Query::SingleSource { node: 0 }),
            Err(QueryError::EmptyGraph)
        );
        assert_eq!(
            validate(&g, &Query::SingleSource { node: 8 }),
            Err(QueryError::NodeOutOfRange {
                node: 8,
                num_nodes: 8
            })
        );
        assert_eq!(
            validate(&g, &Query::TopK { node: A, k: 0 }),
            Err(QueryError::InvalidK { k: 0 })
        );
        assert!(matches!(
            validate(
                &g,
                &Query::Threshold {
                    node: A,
                    tau: f64::NAN
                }
            ),
            Err(QueryError::InvalidThreshold { tau }) if tau.is_nan()
        ));
        assert_eq!(
            validate(&g, &Query::Threshold { node: A, tau: -0.5 }),
            Err(QueryError::InvalidThreshold { tau: -0.5 })
        );
        assert!(validate(&g, &Query::SingleSource { node: A }).is_ok());
    }

    /// A graph whose node count can grow behind a shared borrow — the
    /// shape of bugs where `DynamicGraph::add_nodes` outruns a session's
    /// slab sizing (e.g. a service holding the graph in a lock and
    /// recreating sessions lazily). Atomic-backed so it stays `Sync`
    /// (sessions require it for the parallel sweep).
    struct GrowableGraph {
        inner: CsrGraph,
        extra_nodes: std::sync::atomic::AtomicUsize,
    }

    impl GraphView for GrowableGraph {
        fn num_nodes(&self) -> usize {
            self.inner.num_nodes() + self.extra_nodes.load(std::sync::atomic::Ordering::Relaxed)
        }
        fn num_edges(&self) -> usize {
            self.inner.num_edges()
        }
        fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
            if (v as usize) < self.inner.num_nodes() {
                self.inner.in_neighbors(v)
            } else {
                &[]
            }
        }
        fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
            if (v as usize) < self.inner.num_nodes() {
                self.inner.out_neighbors(v)
            } else {
                &[]
            }
        }
    }

    #[test]
    fn graph_growth_after_session_creation_is_an_error_not_oob() {
        let graph = GrowableGraph {
            inner: toy_graph(),
            extra_nodes: std::sync::atomic::AtomicUsize::new(0),
        };
        let e = engine(0.1);
        let mut session = e.session(&graph);
        assert!(session.run(Query::SingleSource { node: A }).is_ok());

        // The graph grows underneath the live session.
        graph
            .extra_nodes
            .store(4, std::sync::atomic::Ordering::Relaxed);
        let err = session.run(Query::SingleSource { node: A }).unwrap_err();
        assert_eq!(
            err,
            QueryError::GraphResized {
                session_nodes: 8,
                graph_nodes: 12,
            }
        );
        // Batches and external-RNG runs hit the same guard, before any
        // per-query validation.
        assert_eq!(
            session
                .run_batch(&[Query::SingleSource { node: A }])
                .unwrap_err(),
            err
        );
        let mut rng = query_rng(0, A);
        assert_eq!(
            session
                .run_with_rng(Query::SingleSource { node: A }, &mut rng)
                .unwrap_err(),
            err
        );
        assert_eq!(session.queries_run(), 1, "no execution after the resize");

        // A fresh session sized for the grown graph works again — and can
        // query the new (isolated) nodes.
        let mut rebound = e.session(&graph);
        assert!(rebound.run(Query::SingleSource { node: A }).is_ok());
        let out = rebound.run(Query::SingleSource { node: 11 }).unwrap();
        assert!(out.scores.is_empty(), "isolated node touches nothing");
    }

    #[test]
    fn owned_snapshot_session_matches_borrowed_and_survives_writer_churn() {
        use probesim_graph::{GraphStore, GraphUpdate};
        let g = toy_graph();
        let mut store = GraphStore::from_view(&g);
        let e = engine(0.05);

        // Owned snapshot session == borrowed CsrGraph session, bit for bit.
        let snap = store.snapshot();
        let owned = e
            .session(snap)
            .run(Query::SingleSource { node: A })
            .unwrap();
        let borrowed = e.session(&g).run(Query::SingleSource { node: A }).unwrap();
        assert_eq!(owned.scores, borrowed.scores);
        assert_eq!(owned.stats, borrowed.stats);

        // A long-lived owned session keeps answering its pinned version
        // while the writer mutates and compacts underneath.
        let mut pinned = e.session(store.snapshot());
        let before = pinned.run(Query::SingleSource { node: A }).unwrap();
        store.apply_all((0..8u32).map(|v| GraphUpdate::Remove {
            u: v,
            v: (v + 1) % 8,
        }));
        store.compact();
        let after = pinned.run(Query::SingleSource { node: A }).unwrap();
        assert_eq!(before.scores, after.scores, "snapshot isolation broken");
        assert_eq!(pinned.queries_run(), 2);
    }

    #[test]
    fn stable_node_count_compiles_the_resize_guard_away() {
        use probesim_graph::GraphStore;
        // The type-level witness: CsrGraph and GraphSnapshot promise a
        // stable count, the atomic-backed growable wrapper cannot. Const
        // blocks: these are compile-time facts, not runtime checks.
        const {
            assert!(<CsrGraph as GraphView>::STABLE_NODE_COUNT);
            assert!(<&CsrGraph as GraphView>::STABLE_NODE_COUNT);
            assert!(<probesim_graph::GraphSnapshot as GraphView>::STABLE_NODE_COUNT);
            assert!(!<probesim_graph::DynamicGraph as GraphView>::STABLE_NODE_COUNT);
            assert!(!<GrowableGraph as GraphView>::STABLE_NODE_COUNT);
        }

        // And the behavioral consequence: a session over an owned
        // snapshot runs thousands of queries without ever consulting the
        // resize guard (it cannot fail — no GraphResized is observable).
        let store = GraphStore::from_view(&toy_graph());
        let mut session = engine(0.1).session(store.snapshot());
        for _ in 0..64 {
            assert!(session.run(Query::SingleSource { node: A }).is_ok());
        }
    }

    #[test]
    fn par_batch_owned_matches_sequential_on_snapshots() {
        use probesim_graph::GraphStore;
        let g = toy_graph();
        let store = GraphStore::from_view(&g);
        let snap = store.snapshot();
        let e = engine(0.08);
        let queries: Vec<Query> = (0..8).map(|v| Query::SingleSource { node: v }).collect();
        let sequential = e.session(&g).run_batch(&queries).unwrap();
        for threads in [0, 1, 2, 4] {
            let parallel = e.par_batch_owned(&snap, &queries, threads).unwrap();
            assert_eq!(parallel.outputs, sequential.outputs, "threads = {threads}");
            assert_eq!(parallel.stats, sequential.stats);
        }
        // Validation still runs up front.
        let err = e
            .par_batch_owned(&snap, &[Query::TopK { node: A, k: 0 }], 2)
            .unwrap_err();
        assert_eq!(err, QueryError::InvalidK { k: 0 });
    }

    #[test]
    fn query_error_display_is_actionable() {
        let messages = [
            QueryError::NodeOutOfRange {
                node: 9,
                num_nodes: 8,
            }
            .to_string(),
            QueryError::EmptyGraph.to_string(),
            QueryError::InvalidK { k: 0 }.to_string(),
            QueryError::InvalidThreshold { tau: -1.0 }.to_string(),
            QueryError::GraphResized {
                session_nodes: 8,
                graph_nodes: 12,
            }
            .to_string(),
        ];
        assert!(messages[0].contains("out of range"));
        assert!(messages[1].contains("empty graph"));
        assert!(messages[2].contains("k >= 1"));
        assert!(messages[3].contains("tau"));
        assert!(messages[4].contains("grew from 8 to 12"));
        assert!(messages[4].contains("new session"));
    }

    #[test]
    fn run_batch_matches_individual_runs_and_merges_stats() {
        let g = toy_graph();
        let e = engine(0.08);
        let queries = [
            Query::SingleSource { node: A },
            Query::TopK { node: D, k: 2 },
            Query::SingleSource { node: 3 },
        ];
        let batch = e.session(&g).run_batch(&queries).unwrap();
        assert_eq!(batch.outputs.len(), 3);
        let mut expected_stats = QueryStats::default();
        for (query, output) in queries.iter().zip(&batch.outputs) {
            let solo = e.session(&g).run(*query).unwrap();
            assert_eq!(&solo, output);
            expected_stats.merge(&solo.stats);
        }
        assert_eq!(batch.stats, expected_stats);
    }

    #[test]
    fn run_batch_rejects_before_running_anything() {
        let g = toy_graph();
        let mut session = engine(0.1).session(&g);
        let err = session
            .run_batch(&[
                Query::SingleSource { node: A },
                Query::SingleSource { node: 99 },
            ])
            .unwrap_err();
        assert!(matches!(err, QueryError::NodeOutOfRange { node: 99, .. }));
        assert_eq!(session.queries_run(), 0, "no partial execution");
    }

    #[test]
    fn par_batch_matches_sequential_in_input_order() {
        let g = toy_graph();
        let e = engine(0.08);
        let queries: Vec<Query> = (0..8).map(|v| Query::SingleSource { node: v }).collect();
        let sequential = e.session(&g).run_batch(&queries).unwrap();
        for threads in [0, 1, 2, 4] {
            let parallel = e.par_batch(&g, &queries, threads).unwrap();
            assert_eq!(parallel.outputs, sequential.outputs, "threads = {threads}");
            assert_eq!(parallel.stats, sequential.stats);
        }
    }

    #[test]
    fn par_batch_validates_up_front() {
        let g = toy_graph();
        let e = engine(0.1);
        let err = e
            .par_batch(
                &g,
                &[
                    Query::SingleSource { node: A },
                    Query::TopK { node: A, k: 0 },
                ],
                4,
            )
            .unwrap_err();
        assert_eq!(err, QueryError::InvalidK { k: 0 });
    }

    #[test]
    fn mixed_query_kinds_in_one_parallel_batch() {
        let g = toy_graph();
        let e = engine(0.05);
        let queries = [
            Query::TopK { node: A, k: 1 },
            Query::Threshold { node: A, tau: 0.1 },
            Query::SingleSource { node: D },
        ];
        let batch = e.par_batch(&g, &queries, 3).unwrap();
        assert_eq!(batch.outputs[0].ranking()[0].0, D);
        assert!(batch.outputs[1].ranking().iter().all(|&(_, s)| s > 0.1));
        assert_eq!(batch.outputs[2].scores.query(), D);
    }

    #[test]
    fn all_strategies_round_trip_through_sparse() {
        let g = toy_graph();
        for strategy in [
            ProbeStrategy::Deterministic,
            ProbeStrategy::Randomized,
            ProbeStrategy::Hybrid,
        ] {
            for batch_walks in [false, true] {
                let mut cfg = ProbeSimConfig::new(TOY_DECAY, 0.06, 0.01).with_seed(0xBEEF);
                cfg.optimizations.strategy = strategy;
                cfg.optimizations.batch_walks = batch_walks;
                let e = ProbeSim::new(cfg);
                let sparse = e
                    .session(&g)
                    .run(Query::SingleSource { node: A })
                    .unwrap()
                    .scores
                    .to_dense();
                let reference = e.single_source_dense_reference(&g, A).scores;
                assert_eq!(sparse, reference, "{strategy:?} batch={batch_walks}");
            }
        }
    }
}
