//! Query results and execution statistics.

use probesim_graph::NodeId;

/// Counters collected while answering one query; the ablation benchmarks
/// and EXPERIMENTS.md report these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// √c-walks sampled.
    pub walks: usize,
    /// Walks that hit the truncation cap `ℓt` (pruning rule 1).
    pub truncated_walks: usize,
    /// Total walk nodes generated.
    pub walk_nodes: usize,
    /// PROBE invocations (deterministic + randomized + hybrid).
    pub probes: usize,
    /// Randomized PROBE runs (including hybrid continuations).
    pub randomized_probes: usize,
    /// Deterministic→randomized switches taken by hybrid probes.
    pub hybrid_switches: usize,
    /// Out-edges traversed by deterministic expansions.
    pub edges_expanded: usize,
    /// Candidate nodes sampled by randomized expansions.
    pub nodes_sampled: usize,
    /// Distinct prefixes probed via the batch trie (0 when unbatched).
    pub trie_prefixes: usize,
    /// Frontier entries deduplicated by the fused probe engine: each one
    /// is a `(node, trie position)` contribution the legacy per-prefix
    /// path would have expanded separately (0 off the fused path).
    pub frontier_merges: usize,
    /// Level-synchronous sweeps executed by the fused probe engine
    /// (0 off the fused path).
    pub levels_expanded: usize,
    /// Contribution-index entries replayed from a fresh row — the true
    /// cost of an index-engine replay (an `O(row)` reconstruction), and
    /// the only work a replay does (0 off the index engine).
    pub index_rows_used: usize,
    /// Queries the index engine could not serve from a fresh row (the
    /// row was absent, stale, or built on a different node count) and
    /// answered with an on-the-fly probe run instead — the build-through
    /// that doubles as the row rebuild (0 off the index engine).
    pub index_rows_stale: usize,
    /// 1 when the index engine produced this answer (replay or
    /// build-through), 0 for the index-free engine. Merged over a run it
    /// counts index-engine-answered queries — the per-engine tally the
    /// planner fingerprint and `serve-bench` report.
    pub planner_engine: usize,
}

impl QueryStats {
    /// Counter names, in declaration order — the schema of
    /// [`QueryStats::field_values`] and the key order serializers emit.
    pub const FIELD_NAMES: [&'static str; 14] = [
        "walks",
        "truncated_walks",
        "walk_nodes",
        "probes",
        "randomized_probes",
        "hybrid_switches",
        "edges_expanded",
        "nodes_sampled",
        "trie_prefixes",
        "frontier_merges",
        "levels_expanded",
        "index_rows_used",
        "index_rows_stale",
        "planner_engine",
    ];

    /// Counter values in [`QueryStats::FIELD_NAMES`] order.
    pub fn field_values(&self) -> [usize; 14] {
        // Exhaustive destructuring: adding a counter to the struct without
        // extending this snapshot is a compile error, not a silent gap.
        let QueryStats {
            walks,
            truncated_walks,
            walk_nodes,
            probes,
            randomized_probes,
            hybrid_switches,
            edges_expanded,
            nodes_sampled,
            trie_prefixes,
            frontier_merges,
            levels_expanded,
            index_rows_used,
            index_rows_stale,
            planner_engine,
        } = *self;
        [
            walks,
            truncated_walks,
            walk_nodes,
            probes,
            randomized_probes,
            hybrid_switches,
            edges_expanded,
            nodes_sampled,
            trie_prefixes,
            frontier_merges,
            levels_expanded,
            index_rows_used,
            index_rows_stale,
            planner_engine,
        ]
    }

    /// `(name, value)` pairs for every counter — the serializable
    /// snapshot consumed by the JSON writers in the CLI and the benchmark
    /// report, so a new counter added here flows into every output format
    /// automatically.
    pub fn fields(&self) -> impl Iterator<Item = (&'static str, usize)> {
        Self::FIELD_NAMES.into_iter().zip(self.field_values())
    }

    /// Total algorithmic work: walk nodes generated plus edges expanded
    /// plus nodes sampled, plus index entries replayed (the whole cost
    /// of an index-engine replay). Deterministic given graph + config +
    /// seed, which makes it a machine-independent signal for the CI perf
    /// gate (wall-clock medians vary across runners; this does not).
    pub fn total_work(&self) -> usize {
        self.walk_nodes + self.edges_expanded + self.nodes_sampled + self.index_rows_used
    }

    /// Merges counters from another query (for experiment aggregates).
    ///
    /// Exhaustively destructures `other`, so a counter added to the struct
    /// without being merged here (the bug class that would silently drop
    /// it from `run_batch`/`par_batch` aggregates) is a compile error.
    pub fn merge(&mut self, other: &QueryStats) {
        let QueryStats {
            walks,
            truncated_walks,
            walk_nodes,
            probes,
            randomized_probes,
            hybrid_switches,
            edges_expanded,
            nodes_sampled,
            trie_prefixes,
            frontier_merges,
            levels_expanded,
            index_rows_used,
            index_rows_stale,
            planner_engine,
        } = *other;
        self.walks += walks;
        self.truncated_walks += truncated_walks;
        self.walk_nodes += walk_nodes;
        self.probes += probes;
        self.randomized_probes += randomized_probes;
        self.hybrid_switches += hybrid_switches;
        self.edges_expanded += edges_expanded;
        self.nodes_sampled += nodes_sampled;
        self.trie_prefixes += trie_prefixes;
        self.frontier_merges += frontier_merges;
        self.levels_expanded += levels_expanded;
        self.index_rows_used += index_rows_used;
        self.index_rows_stale += index_rows_stale;
        self.planner_engine += planner_engine;
    }
}

/// The answer to a single-source SimRank query.
#[derive(Debug, Clone)]
pub struct SingleSourceResult {
    /// The query node `u`.
    pub query: NodeId,
    /// `scores[v] = s̃(u, v)` for every `v`; `scores[u]` is fixed at 1.0
    /// by the SimRank definition.
    pub scores: Vec<f64>,
    /// Execution counters.
    pub stats: QueryStats,
}

impl SingleSourceResult {
    /// `s̃(u, v)`.
    #[inline]
    pub fn score(&self, v: NodeId) -> f64 {
        self.scores[v as usize]
    }

    /// The `k` most similar nodes to `u` (excluding `u` itself), highest
    /// score first; ties broken by node id for determinism.
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        crate::topk::top_k_from_scores(&self.scores, self.query, k)
    }

    /// Nodes with estimate above `threshold`, unordered.
    pub fn above_threshold(&self, threshold: f64) -> Vec<(NodeId, f64)> {
        self.scores
            .iter()
            .enumerate()
            .filter(|&(v, &s)| v as NodeId != self.query && s > threshold)
            .map(|(v, &s)| (v as NodeId, s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = QueryStats {
            walks: 1,
            probes: 2,
            edges_expanded: 10,
            ..QueryStats::default()
        };
        let b = QueryStats {
            walks: 3,
            probes: 4,
            hybrid_switches: 1,
            frontier_merges: 5,
            levels_expanded: 2,
            index_rows_used: 6,
            index_rows_stale: 1,
            planner_engine: 1,
            ..QueryStats::default()
        };
        a.merge(&b);
        assert_eq!(a.walks, 4);
        assert_eq!(a.probes, 6);
        assert_eq!(a.edges_expanded, 10);
        assert_eq!(a.hybrid_switches, 1);
        assert_eq!(a.frontier_merges, 5);
        assert_eq!(a.levels_expanded, 2);
        assert_eq!(a.index_rows_used, 6);
        assert_eq!(a.index_rows_stale, 1);
        assert_eq!(a.planner_engine, 1);
    }

    #[test]
    fn fields_snapshot_covers_every_counter() {
        let stats = QueryStats {
            walks: 1,
            truncated_walks: 2,
            walk_nodes: 3,
            probes: 4,
            randomized_probes: 5,
            hybrid_switches: 6,
            edges_expanded: 7,
            nodes_sampled: 8,
            trie_prefixes: 9,
            frontier_merges: 10,
            levels_expanded: 11,
            index_rows_used: 12,
            index_rows_stale: 13,
            planner_engine: 14,
        };
        let fields: Vec<(&str, usize)> = stats.fields().collect();
        assert_eq!(fields.len(), QueryStats::FIELD_NAMES.len());
        // Every value 1..=14 appears exactly once: a counter added to the
        // struct without extending the snapshot would break this.
        let mut values: Vec<usize> = fields.iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        assert_eq!(values, (1..=14).collect::<Vec<_>>());
        assert_eq!(stats.fields().count(), 14);
        assert_eq!(stats.total_work(), 3 + 7 + 8 + 12);
    }

    #[test]
    fn result_accessors() {
        let r = SingleSourceResult {
            query: 1,
            scores: vec![0.3, 1.0, 0.5, 0.05],
            stats: QueryStats::default(),
        };
        assert_eq!(r.score(2), 0.5);
        assert_eq!(r.top_k(2), vec![(2, 0.5), (0, 0.3)]);
        let mut above = r.above_threshold(0.1);
        above.sort_unstable_by_key(|&(v, _)| v);
        assert_eq!(above, vec![(0, 0.3), (2, 0.5)]);
    }
}
