//! The workspace's one work-stealing fan-out primitive.
//!
//! Both [`crate::ProbeSim::par_batch`] (per-thread pooled sessions) and
//! `probesim_eval`'s experiment sweeps need the same shape: run `len`
//! independent jobs on `threads` scoped workers, give each worker a
//! private mutable state built once (a `QuerySession`, or nothing), and
//! return results **in input order**. Keeping the atomic-claim loop in
//! one place means panic handling and ordering fixes happen once.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(&mut state, i)` for every `i in 0..len` across `threads`
/// scoped worker threads, returning the results in index order.
///
/// `init` builds one private `state` per worker (called once per thread,
/// and once total on the sequential path taken when `threads <= 1` or
/// `len <= 1`). Jobs are claimed dynamically from an atomic counter, so
/// uneven job costs balance automatically.
pub fn ordered_map_with<T, S, I, F>(len: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.clamp(1, len.max(1));
    if threads == 1 || len <= 1 {
        let mut state = init();
        return (0..len).map(|i| f(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..len).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let value = f(&mut state, i);
                    *slots[i].lock().expect("result slot poisoned") = Some(value);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("invariant: every slot filled by its worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = ordered_map_with(50, 4, || (), |_, i| i * 2);
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let serial = ordered_map_with(20, 1, || (), |_, i| i + 1);
        let parallel = ordered_map_with(20, 4, || (), |_, i| i + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn per_worker_state_is_private_and_reused() {
        // Each worker counts its own jobs; the totals must cover all jobs
        // exactly once.
        use std::sync::atomic::AtomicUsize;
        let total = AtomicUsize::new(0);
        let out = ordered_map_with(
            64,
            4,
            || 0usize,
            |count, i| {
                *count += 1;
                total.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out.len(), 64);
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<usize> = ordered_map_with(0, 4, || (), |_, i| i);
        assert!(empty.is_empty());
        let one = ordered_map_with(1, 4, || (), |_, i| i);
        assert_eq!(one, vec![0]);
    }
}
