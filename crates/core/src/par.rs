//! The workspace's one work-stealing fan-out primitive.
//!
//! Both [`crate::ProbeSim::par_batch`] (per-thread pooled sessions) and
//! `probesim_eval`'s experiment sweeps need the same shape: run `len`
//! independent jobs on `threads` scoped workers, give each worker a
//! private mutable state built once (a `QuerySession`, or nothing), and
//! return results **in input order**. Keeping the atomic-claim loop in
//! one place means panic handling and ordering fixes happen once.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(&mut state, i)` for every `i in 0..len` across `threads`
/// scoped worker threads, returning the results in index order.
///
/// `init` builds one private `state` per worker (called once per thread,
/// and once total on the sequential path taken when `threads <= 1` or
/// `len <= 1`). Jobs are claimed dynamically from an atomic counter, so
/// uneven job costs balance automatically.
pub fn ordered_map_with<T, S, I, F>(len: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.clamp(1, len.max(1));
    if threads == 1 || len <= 1 {
        let mut state = init();
        return (0..len).map(|i| f(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..len).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let value = f(&mut state, i);
                    *slots[i].lock().expect("result slot poisoned") = Some(value);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("invariant: every slot filled by its worker")
        })
        .collect()
}

/// The fixed chunk width of [`chunked_ranges`].
///
/// A constant (rather than `len / threads`) is what makes the chunk
/// *partition* independent of the thread count: callers that derive
/// per-chunk RNG streams or merge per-chunk shards in chunk order get
/// identical results at any parallelism level, because the chunks
/// themselves never move.
pub const SWEEP_CHUNK: usize = 256;

/// Partitions `0..len` into contiguous [`SWEEP_CHUNK`]-sized chunks and
/// runs `f(chunk_index, range)` for each across `threads` scoped workers,
/// returning the per-chunk results **in chunk order** — the scoped
/// chunked-reduce primitive behind the fused engine's parallel sweep.
///
/// The chunk boundaries depend only on `len`, never on `threads`, so a
/// deterministic ordered fold over the returned shards reproduces the
/// same result at every thread count (chunks are claimed dynamically,
/// but results come back indexed).
pub fn chunked_ranges<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    let chunks = len.div_ceil(SWEEP_CHUNK);
    ordered_map_with(
        chunks,
        threads,
        || (),
        |_, c| {
            let start = c * SWEEP_CHUNK;
            let end = (start + SWEEP_CHUNK).min(len);
            f(c, start..end)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = ordered_map_with(50, 4, || (), |_, i| i * 2);
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let serial = ordered_map_with(20, 1, || (), |_, i| i + 1);
        let parallel = ordered_map_with(20, 4, || (), |_, i| i + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn per_worker_state_is_private_and_reused() {
        // Each worker counts its own jobs; the totals must cover all jobs
        // exactly once.
        use std::sync::atomic::AtomicUsize;
        let total = AtomicUsize::new(0);
        let out = ordered_map_with(
            64,
            4,
            || 0usize,
            |count, i| {
                *count += 1;
                total.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out.len(), 64);
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<usize> = ordered_map_with(0, 4, || (), |_, i| i);
        assert!(empty.is_empty());
        let one = ordered_map_with(1, 4, || (), |_, i| i);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn thread_count_is_clamped_to_job_count() {
        // A 64-thread request over a 3-item batch must not spawn 64
        // workers: `init` runs once per worker, so counting `init`
        // calls bounds the number of workers actually started.
        let inits = AtomicUsize::new(0);
        let out = ordered_map_with(
            3,
            64,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |_, i| i * 10,
        );
        assert_eq!(out, vec![0, 10, 20]);
        assert!(
            inits.load(Ordering::Relaxed) <= 3,
            "spawned {} workers for 3 jobs",
            inits.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn chunked_ranges_cover_the_input_exactly_once() {
        for len in [
            0usize,
            1,
            SWEEP_CHUNK - 1,
            SWEEP_CHUNK,
            SWEEP_CHUNK + 1,
            3 * SWEEP_CHUNK + 7,
        ] {
            let ranges = chunked_ranges(len, 4, |c, r| (c, r));
            let mut expected_start = 0usize;
            for (i, (c, r)) in ranges.iter().enumerate() {
                assert_eq!(*c, i);
                assert_eq!(r.start, expected_start);
                assert!(r.end > r.start);
                assert!(r.end - r.start <= SWEEP_CHUNK);
                expected_start = r.end;
            }
            assert_eq!(expected_start, len);
            assert_eq!(ranges.len(), len.div_ceil(SWEEP_CHUNK));
        }
    }

    #[test]
    fn chunked_ranges_are_identical_at_every_thread_count() {
        let len = 5 * SWEEP_CHUNK + 13;
        let reference = chunked_ranges(len, 1, |c, r| (c, r));
        for threads in [2usize, 4, 8, 64] {
            assert_eq!(chunked_ranges(len, threads, |c, r| (c, r)), reference);
        }
    }
}
