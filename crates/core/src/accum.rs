//! Score accumulation sinks.
//!
//! Every PROBE variant *emits* `weight · Score(v)` pairs; what receives
//! them is a [`ScoreSink`]. Three sinks exist:
//!
//! * a dense `[f64]` / `Vec<f64>` slab — the paper-faithful reference path
//!   (fresh O(n) memory per query, used by
//!   [`crate::ProbeSim::single_source_dense_reference`] and the probe unit
//!   tests),
//! * [`SparseAccumulator`] — the pooled accumulator a
//!   [`crate::session::QuerySession`] reuses across queries,
//! * [`crate::workspace::LevelBuf`] — the version-stamped set used for
//!   PROBE frontiers, also usable as a sink in tests.
//!
//! ## Why [`SparseAccumulator`] is a slab + dirty bitset
//!
//! The emission path is hot (one `add` per frontier node per probe), so
//! the accumulator must not pay a branch or an extra list push there, and
//! the drain must not pay a comparison sort. The design:
//!
//! * a dense `f64` slab holds the scores (identical adds to the dense
//!   reference path — bit-for-bit equivalence by construction);
//! * a per-slot dirty **bitset** (`n/64` words, ~2 KiB per 1M nodes, so
//!   effectively cache-resident) is OR-marked branchlessly on every add;
//! * [`SparseAccumulator::drain_into`] walks the bitset words, emits the
//!   touched `(node, score)` pairs **already in ascending node order**
//!   (no sort), and zeroes both the slab entries and the bitset in the
//!   same pass — the reset is folded into the drain, O(touched) work.
//!
//! Keeping the emission site generic means all paths share every line of
//! traversal code, which is what makes the bit-for-bit equivalence
//! property (`SparseScores::to_dense` == dense reference) testable.

use probesim_graph::NodeId;

use crate::workspace::LevelBuf;

/// A receiver of per-node score contributions. Contributions are always
/// ≥ 0 (probe scores are probabilities scaled by positive weights).
pub trait ScoreSink {
    /// Adds `delta` to node `v`'s accumulated score.
    fn add(&mut self, v: NodeId, delta: f64);
}

impl ScoreSink for [f64] {
    #[inline]
    fn add(&mut self, v: NodeId, delta: f64) {
        self[v as usize] += delta;
    }
}

impl ScoreSink for Vec<f64> {
    #[inline]
    fn add(&mut self, v: NodeId, delta: f64) {
        self[v as usize] += delta;
    }
}

impl ScoreSink for LevelBuf {
    #[inline]
    fn add(&mut self, v: NodeId, delta: f64) {
        LevelBuf::add(self, v, delta);
    }
}

/// Pooled sparse accumulator: dense `f64` slab + per-slot dirty bitset.
///
/// Invariant between queries: the slab is all-zero and the bitset all
/// clear; [`SparseAccumulator::drain_into`] restores the invariant while
/// extracting the touched entries.
#[derive(Debug, Clone)]
pub struct SparseAccumulator {
    slab: Vec<f64>,
    dirty: Vec<u64>,
}

impl SparseAccumulator {
    /// An accumulator for node ids `0..n` (the only O(n) allocation,
    /// made once per session).
    pub fn new(n: usize) -> Self {
        SparseAccumulator {
            slab: vec![0.0; n],
            dirty: vec![0u64; n.div_ceil(64)],
        }
    }

    /// The accumulated score of `v` (0.0 when untouched).
    #[inline]
    pub fn get(&self, v: NodeId) -> f64 {
        self.slab[v as usize]
    }

    /// True when `v` has received at least one add since the last drain.
    #[inline]
    pub fn is_touched(&self, v: NodeId) -> bool {
        self.dirty[v as usize / 64] >> (v % 64) & 1 == 1
    }

    /// Moves every touched `(node, score)` pair except `skip` into
    /// `entries` **in ascending node order**, zeroing the slab and the
    /// bitset along the way. O(touched + n/64); allocation only inside
    /// `entries`.
    pub fn drain_into(&mut self, skip: NodeId, entries: &mut Vec<(NodeId, f64)>) {
        entries.clear();
        for (word_idx, word) in self.dirty.iter_mut().enumerate() {
            let mut bits = *word;
            if bits == 0 {
                continue;
            }
            *word = 0;
            while bits != 0 {
                let v = (word_idx * 64) as NodeId + bits.trailing_zeros() as NodeId;
                bits &= bits - 1;
                let slot = &mut self.slab[v as usize];
                let score = *slot;
                *slot = 0.0;
                if v != skip {
                    entries.push((v, score));
                }
            }
        }
    }

    /// Discards all accumulated state (what [`SparseAccumulator::drain_into`]
    /// does minus the extraction).
    pub fn reset(&mut self) {
        for (word_idx, word) in self.dirty.iter_mut().enumerate() {
            let mut bits = *word;
            if bits == 0 {
                continue;
            }
            *word = 0;
            while bits != 0 {
                let v = word_idx * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.slab[v] = 0.0;
            }
        }
    }
}

impl ScoreSink for SparseAccumulator {
    #[inline]
    fn add(&mut self, v: NodeId, delta: f64) {
        // Branchless: the slab add is what the dense path does; the OR
        // into the (cache-resident) bitset is the only extra work.
        self.slab[v as usize] += delta;
        self.dirty[v as usize / 64] |= 1 << (v % 64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit<A: ScoreSink + ?Sized>(acc: &mut A) {
        acc.add(65, 0.5);
        acc.add(3, 0.25);
        acc.add(65, 0.5);
        acc.add(64, 0.125);
    }

    #[test]
    fn dense_and_levelbuf_sinks_accumulate_identically() {
        let mut dense = vec![0.0f64; 128];
        emit(&mut dense);
        let mut sparse = LevelBuf::new(128);
        sparse.clear();
        emit(&mut sparse);
        for v in 0..128u32 {
            // Bit-for-bit: same chronological additions per node.
            assert_eq!(dense[v as usize].to_bits(), sparse.get(v).to_bits());
        }
        assert_eq!(sparse.len(), 3);
    }

    #[test]
    fn sparse_accumulator_matches_dense_and_drains_sorted() {
        let mut dense = vec![0.0f64; 128];
        emit(&mut dense);
        let mut acc = SparseAccumulator::new(128);
        emit(&mut acc);
        for v in 0..128u32 {
            assert_eq!(dense[v as usize].to_bits(), acc.get(v).to_bits());
        }
        assert!(acc.is_touched(3) && acc.is_touched(64) && acc.is_touched(65));
        assert!(!acc.is_touched(0));
        let mut entries = Vec::new();
        acc.drain_into(NodeId::MAX, &mut entries);
        assert_eq!(entries, vec![(3, 0.25), (64, 0.125), (65, 1.0)]);
    }

    #[test]
    fn drain_skips_the_query_node_and_resets() {
        let mut acc = SparseAccumulator::new(70);
        emit(&mut acc);
        let mut entries = Vec::new();
        acc.drain_into(65, &mut entries);
        assert_eq!(entries, vec![(3, 0.25), (64, 0.125)]);
        // The invariant is restored: next query starts clean.
        for v in 0..70u32 {
            assert_eq!(acc.get(v), 0.0);
            assert!(!acc.is_touched(v));
        }
        acc.add(7, 1.25);
        acc.drain_into(NodeId::MAX, &mut entries);
        assert_eq!(entries, vec![(7, 1.25)]);
    }

    #[test]
    fn reset_restores_the_clean_invariant() {
        let mut acc = SparseAccumulator::new(128);
        emit(&mut acc);
        acc.reset();
        for v in 0..128u32 {
            assert_eq!(acc.get(v), 0.0);
            assert!(!acc.is_touched(v));
        }
    }

    #[test]
    fn accumulator_size_rounds_up_to_word() {
        // n not a multiple of 64 must still cover every node.
        let mut acc = SparseAccumulator::new(65);
        acc.add(64, 0.5);
        let mut entries = Vec::new();
        acc.drain_into(NodeId::MAX, &mut entries);
        assert_eq!(entries, vec![(64, 0.5)]);
    }
}
