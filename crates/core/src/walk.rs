//! √c-walk sampling (Definition 3 of the paper).
//!
//! A √c-walk from `u` follows a uniformly random *in*-neighbor at each step
//! and terminates with probability `1 − √c` per step (or when it reaches a
//! node with no in-edges). Its expected length is `1/(1 − √c)` nodes, and
//! `E[ℓ²] = (1 + √c)/(1 − √c)²` is constant — the fact that makes a probe
//! over a whole walk O(m) expected (Section 3.3).

use probesim_graph::{GraphView, NodeId};
use rand::Rng;

/// Samples one √c-walk starting at `u`, capped at `max_nodes` nodes
/// (pruning rule 1 uses `ℓt`; pass `usize::MAX` for no cap).
///
/// The returned vector always contains at least `u` itself.
pub fn sample_walk<G: GraphView, R: Rng + ?Sized>(
    graph: &G,
    u: NodeId,
    sqrt_c: f64,
    max_nodes: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut walk = Vec::with_capacity(8);
    walk.push(u);
    extend_walk(graph, &mut walk, sqrt_c, max_nodes, rng);
    walk
}

/// Extends a partially-built walk in place until termination or the cap;
/// used by [`sample_walk`] and by the batch driver, which reuses one
/// allocation across all `nr` walks.
pub fn extend_walk<G: GraphView, R: Rng + ?Sized>(
    graph: &G,
    walk: &mut Vec<NodeId>,
    sqrt_c: f64,
    max_nodes: usize,
    rng: &mut R,
) {
    debug_assert!(!walk.is_empty());
    let mut current = *walk.last().expect("invariant: walk has a start node");
    while walk.len() < max_nodes {
        // Terminate with probability 1 − √c (Definition 3).
        if rng.gen::<f64>() >= sqrt_c {
            break;
        }
        let in_nbrs = graph.in_neighbors(current);
        if in_nbrs.is_empty() {
            break;
        }
        current = in_nbrs[rng.gen_range(0..in_nbrs.len())];
        walk.push(current);
    }
}

/// Expected number of nodes in an untruncated √c-walk: `1/(1 − √c)`.
pub fn expected_len(sqrt_c: f64) -> f64 {
    1.0 / (1.0 - sqrt_c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_graph::toy::toy_graph;
    use probesim_graph::CsrGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn walk_starts_at_query_node() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(1);
        for u in 0..8u32 {
            let w = sample_walk(&g, u, 0.5, usize::MAX, &mut rng);
            assert_eq!(w[0], u);
        }
    }

    #[test]
    fn every_step_follows_an_in_edge() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let w = sample_walk(&g, 0, 0.5, usize::MAX, &mut rng);
            for pair in w.windows(2) {
                assert!(
                    g.in_neighbors(pair[0]).contains(&pair[1]),
                    "step {} -> {} is not an in-edge",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn cap_is_respected() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let w = sample_walk(&g, 0, 0.99, 4, &mut rng);
            assert!(w.len() <= 4);
        }
    }

    #[test]
    fn dead_end_terminates_walk() {
        // 1 -> 0; node 1 has no in-edges, so walks from 0 stop at 1.
        let g = CsrGraph::from_edges(2, &[(1, 0)]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let w = sample_walk(&g, 0, 0.999, usize::MAX, &mut rng);
            assert!(w.len() <= 2);
        }
    }

    #[test]
    fn mean_length_matches_geometric_expectation() {
        // A directed cycle never dead-ends, so length is purely geometric.
        let edges: Vec<(u32, u32)> = (0..16u32).map(|i| (i, (i + 1) % 16)).collect();
        let g = CsrGraph::from_edges(16, &edges);
        let sqrt_c = 0.6f64.sqrt();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 40_000;
        let total: usize = (0..trials)
            .map(|_| sample_walk(&g, 0, sqrt_c, usize::MAX, &mut rng).len())
            .sum();
        let mean = total as f64 / trials as f64;
        let expected = expected_len(sqrt_c);
        assert!(
            (mean - expected).abs() < 0.05,
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn extend_continues_from_last_node() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(6);
        let mut walk = vec![0u32];
        extend_walk(&g, &mut walk, 0.9, 10, &mut rng);
        assert_eq!(walk[0], 0);
        assert!(walk.len() <= 10);
    }
}
