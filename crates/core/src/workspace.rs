//! Reusable dense scratch space for PROBE traversals.
//!
//! A probe touches a per-level frontier of (node, score) pairs. The paper's
//! pseudo-code uses hash sets; we use the classic dense-array-with-
//! version-stamps trick instead: O(1) insert/lookup with no hashing and no
//! O(n) clearing between levels (clearing bumps a version counter). One
//! [`ProbeWorkspace`] is allocated per query (O(n)) and reused across all
//! `nr · E\[ℓ\]` probes, which is where most of ProbeSim's practical speed
//! over a naive hash-map implementation comes from.

use probesim_graph::NodeId;

use crate::budget::ProbeBudget;

/// One frontier level: a sparse set of nodes with f64 scores backed by
/// dense arrays.
#[derive(Debug, Clone)]
pub struct LevelBuf {
    score: Vec<f64>,
    stamp: Vec<u32>,
    version: u32,
    nodes: Vec<NodeId>,
}

impl LevelBuf {
    /// A buffer for node ids `0..n`.
    pub fn new(n: usize) -> Self {
        LevelBuf {
            score: vec![0.0; n],
            stamp: vec![0; n],
            version: 0,
            nodes: Vec::new(),
        }
    }

    /// Removes all entries in O(1) amortized (version bump).
    pub fn clear(&mut self) {
        self.nodes.clear();
        // On wrap-around, fall back to a real reset so stale stamps can
        // never alias the new version.
        if self.version == u32::MAX {
            self.version = 0;
            self.stamp.fill(0);
        }
        self.version += 1;
    }

    /// Adds `delta` to `v`'s score, inserting it if absent.
    #[inline]
    pub fn add(&mut self, v: NodeId, delta: f64) {
        let i = v as usize;
        if self.stamp[i] == self.version {
            self.score[i] += delta;
        } else {
            self.stamp[i] = self.version;
            self.score[i] = delta;
            self.nodes.push(v);
        }
    }

    /// Inserts `v` with an exact score, overwriting any previous value.
    #[inline]
    pub fn set(&mut self, v: NodeId, value: f64) {
        let i = v as usize;
        if self.stamp[i] != self.version {
            self.stamp[i] = self.version;
            self.nodes.push(v);
        }
        self.score[i] = value;
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.stamp[v as usize] == self.version
    }

    /// The score of `v`, or 0.0 when absent.
    #[inline]
    pub fn get(&self, v: NodeId) -> f64 {
        let i = v as usize;
        if self.stamp[i] == self.version {
            self.score[i]
        } else {
            0.0
        }
    }

    /// The nodes currently in the set, in insertion order. May contain
    /// entries whose score was later zeroed with [`LevelBuf::set`]; PROBE
    /// filters by score where that matters.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no entries are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Drops entries that fail `keep`, compacting the node list.
    pub fn retain<F: FnMut(NodeId, f64) -> bool>(&mut self, mut keep: F) {
        let score = &self.score;
        let stamp = &mut self.stamp;
        let version = self.version;
        self.nodes.retain(|&v| {
            let ok = keep(v, score[v as usize]);
            if !ok {
                // Un-stamp so `contains`/`get` agree with the node list.
                stamp[v as usize] = version.wrapping_sub(1);
            }
            ok
        });
    }
}

/// Pooled storage for the fused probe engine's per-trie-node frontiers
/// ([`crate::frontier`]).
///
/// A fused sweep stores one weighted frontier per trie node: the mass
/// that has propagated down to that trie position. Frontiers are spans
/// in one flat arena, indexed per trie node (`spans`), plus the
/// BFS-cursor scratch buffers ([`crate::trie::WalkTrie::bfs_levels`]
/// fills them). Storage is struct-of-arrays: node ids (`u32`) and
/// weights (`f64`) live in separate lanes so the merge loop streams a
/// dense 4-byte id lane instead of 16-byte padded tuples — half the
/// cache traffic on the id side, and the weight lane stays naturally
/// aligned. Everything is `clear()`-reused: after the first few queries
/// warm the capacities up, a query performs **zero heap allocation**
/// here — the same pooling contract as [`LevelBuf`] and the session's
/// sparse accumulator.
#[derive(Debug, Clone, Default)]
pub struct FrontierArena {
    /// Node-id lane of the flat frontier storage; each trie node's
    /// frontier is a contiguous span, parallel to `entry_weights`.
    entry_nodes: Vec<NodeId>,
    /// Weight lane, parallel to `entry_nodes`.
    entry_weights: Vec<f64>,
    /// Per trie node: `(offset, len)` into the entry lanes.
    spans: Vec<(usize, usize)>,
    /// BFS cursor scratch: trie nodes in level order (node lane,
    /// parallel to `order_parents`).
    pub order_nodes: Vec<u32>,
    /// BFS cursor scratch: parent of each entry in `order_nodes`.
    pub order_parents: Vec<u32>,
    /// BFS cursor scratch: level boundaries into the order lanes.
    pub level_starts: Vec<usize>,
}

impl FrontierArena {
    /// An empty arena; capacities grow on first use and are kept.
    pub fn new() -> Self {
        FrontierArena::default()
    }

    /// Resets the arena for a query over a trie with `trie_len` nodes.
    /// O(trie_len), no allocation once capacities are warm.
    pub fn begin_query(&mut self, trie_len: usize) {
        self.entry_nodes.clear();
        self.entry_weights.clear();
        self.spans.clear();
        self.spans.resize(trie_len, (0, 0));
    }

    /// The stored frontier of trie node `idx` as parallel node/weight
    /// lanes (both empty until stored).
    #[inline]
    pub fn span(&self, idx: u32) -> (&[NodeId], &[f64]) {
        let (offset, len) = self.spans[idx as usize];
        (
            &self.entry_nodes[offset..offset + len],
            &self.entry_weights[offset..offset + len],
        )
    }

    /// Stores `level`'s positive entries (in insertion order) as the
    /// frontier of trie node `idx`.
    pub fn store(&mut self, idx: u32, level: &LevelBuf) {
        let offset = self.entry_nodes.len();
        for &v in level.nodes() {
            let score = level.get(v);
            if score > 0.0 {
                self.entry_nodes.push(v);
                self.entry_weights.push(score);
            }
        }
        self.spans[idx as usize] = (offset, self.entry_nodes.len() - offset);
    }
}

/// How the fused sweep schedules each (level, group) expansion.
///
/// Sequential by default; [`crate::QuerySession`] arms the parallel
/// policy from [`crate::Optimizations::parallel_sweep`]. The policy
/// only decides *where* the work runs — never *what* it computes: the
/// deterministic parallel path replays per-chunk contributions in
/// fixed chunk order (bit-identical to sequential), and the randomized
/// path derives one RNG stream per fixed-width chunk, so output is
/// independent of `threads`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPolicy {
    /// Partition large frontiers across scoped worker threads.
    pub parallel: bool,
    /// Worker-thread count for parallel expansions (>= 1).
    pub threads: usize,
}

impl SweepPolicy {
    /// The default single-threaded policy.
    pub fn sequential() -> Self {
        SweepPolicy {
            parallel: false,
            threads: 1,
        }
    }
}

impl Default for SweepPolicy {
    fn default() -> Self {
        SweepPolicy::sequential()
    }
}

/// Double-buffered frontier pair for a probe traversal.
#[derive(Debug, Clone)]
pub struct ProbeWorkspace {
    /// Current level `H_j`.
    pub current: LevelBuf,
    /// Next level `H_{j+1}`.
    pub next: LevelBuf,
    /// Per-trie-node frontier slabs for the fused probe engine; empty
    /// (and allocation-free) while only the per-prefix paths run.
    pub frontier: FrontierArena,
    /// The active query's cancellation budget, checked by the probe
    /// engines between expansions. Unlimited unless the caller armed one
    /// (`QuerySession::run_with_budget`); carrying it here keeps the
    /// probe signatures free of an extra threading parameter.
    pub budget: ProbeBudget,
    /// Intra-query parallelism policy for the fused sweep; sequential
    /// unless the session armed [`crate::Optimizations::parallel_sweep`].
    pub sweep: SweepPolicy,
    /// The bound graph's node relabeling, when it carries one. The
    /// randomized probe's dense-candidate branch scans nodes through
    /// this map (external-ascending order) so relabeled graphs replay
    /// the exact RNG consumption sequence of the unrelabeled graph.
    pub remap: Option<std::sync::Arc<probesim_graph::NodeRemap>>,
}

impl ProbeWorkspace {
    /// Workspace for node ids `0..n`.
    pub fn new(n: usize) -> Self {
        ProbeWorkspace {
            current: LevelBuf::new(n),
            next: LevelBuf::new(n),
            frontier: FrontierArena::new(),
            budget: ProbeBudget::unlimited(),
            sweep: SweepPolicy::sequential(),
            remap: None,
        }
    }

    /// Clears both levels.
    pub fn reset(&mut self) {
        self.current.clear();
        self.next.clear();
    }

    /// Makes the freshly-built next level current and clears the old one.
    pub fn advance(&mut self) {
        std::mem::swap(&mut self.current, &mut self.next);
        self.next.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let mut b = LevelBuf::new(4);
        b.clear();
        b.add(2, 0.5);
        b.add(2, 0.25);
        b.add(0, 1.0);
        assert_eq!(b.get(2), 0.75);
        assert_eq!(b.get(0), 1.0);
        assert_eq!(b.get(1), 0.0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn clear_is_logical_not_physical() {
        let mut b = LevelBuf::new(2);
        b.clear();
        b.add(1, 3.0);
        b.clear();
        assert!(!b.contains(1));
        assert_eq!(b.get(1), 0.0);
        assert!(b.is_empty());
        b.add(1, 1.0);
        assert_eq!(b.get(1), 1.0);
    }

    #[test]
    fn set_overwrites() {
        let mut b = LevelBuf::new(3);
        b.clear();
        b.add(1, 0.5);
        b.set(1, 0.1);
        assert_eq!(b.get(1), 0.1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn retain_filters_and_unstamps() {
        let mut b = LevelBuf::new(5);
        b.clear();
        for v in 0..5 {
            b.add(v, v as f64 / 10.0);
        }
        b.retain(|_, s| s >= 0.2);
        assert_eq!(b.len(), 3);
        assert!(!b.contains(0));
        assert!(!b.contains(1));
        assert!(b.contains(4));
        assert_eq!(b.get(1), 0.0);
    }

    #[test]
    fn workspace_advance_swaps_levels() {
        let mut ws = ProbeWorkspace::new(3);
        ws.reset();
        ws.next.add(1, 0.5);
        ws.advance();
        assert!(ws.current.contains(1));
        assert!(ws.next.is_empty());
    }

    #[test]
    fn frontier_arena_stores_and_reuses_spans() {
        let mut arena = FrontierArena::new();
        arena.begin_query(3);
        assert!(arena.span(0).0.is_empty());
        let mut buf = LevelBuf::new(8);
        buf.clear();
        buf.add(5, 0.5);
        buf.add(2, 0.25);
        buf.set(7, 0.0); // zeroed entries are dropped at store time
        arena.store(1, &buf);
        assert_eq!(arena.span(1), (&[5u32, 2][..], &[0.5f64, 0.25][..]));
        buf.clear();
        buf.add(3, 1.0);
        arena.store(2, &buf);
        assert_eq!(arena.span(2), (&[3u32][..], &[1.0f64][..]));
        assert_eq!(arena.span(1), (&[5u32, 2][..], &[0.5f64, 0.25][..]));
        // A new query resets every span.
        arena.begin_query(2);
        assert!(arena.span(1).0.is_empty());
    }

    #[test]
    fn version_wraparound_resets_cleanly() {
        let mut b = LevelBuf::new(2);
        b.version = u32::MAX - 1;
        b.clear(); // -> MAX
        b.add(0, 1.0);
        b.clear(); // wraps to 1 with full stamp reset
        assert!(!b.contains(0));
        b.add(1, 2.0);
        assert!(b.contains(1));
        assert_eq!(b.get(0), 0.0);
    }
}
