#![warn(missing_docs)]
//! # probesim-core
//!
//! The ProbeSim algorithm (Liu et al., PVLDB 2017): index-free approximate
//! single-source and top-k SimRank with an absolute-error guarantee.
//!
//! Given a query node `u`, an error bound `εa` and a failure probability
//! `δ`, ProbeSim returns estimates `s̃(u, v)` such that
//! `|s̃(u, v) − s(u, v)| ≤ εa` for all `v` simultaneously with probability
//! at least `1 − δ` — with **no precomputed index**, which is what makes
//! real-time queries on dynamic graphs possible.
//!
//! ## The session API
//!
//! The query surface is built around [`session::QuerySession`]: a
//! reusable, graph-bound execution context that owns the pooled scratch
//! memory (PROBE workspace + score accumulator) and the RNG stream.
//! Queries are [`Query`] values executed with
//! [`session::QuerySession::run`], which returns a [`QueryOutput`]
//! carrying [`SparseScores`] — only the touched `(node, score)` pairs,
//! `O(touched)` memory instead of `O(n)` — or a typed [`QueryError`] for
//! invalid input.
//!
//! ```
//! use probesim_core::{ProbeSim, ProbeSimConfig, Query};
//! use probesim_graph::toy::{toy_graph, A, TOY_DECAY};
//! use probesim_graph::GraphView;
//!
//! let graph = toy_graph();
//! let engine = ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, 0.05, 0.01).with_seed(7));
//!
//! // One session, many queries: scratch memory is allocated once and
//! // reset in O(touched) between queries.
//! let mut session = engine.session(&graph);
//! let top = session.run(Query::TopK { node: A, k: 1 })?;
//! // d is the most similar node to a (Table 2 of the paper).
//! assert_eq!(top.ranking()[0].0, probesim_graph::toy::D);
//!
//! let sparse = session.run(Query::SingleSource { node: A })?;
//! assert!(sparse.scores.len() < graph.num_nodes()); // touched nodes only
//! assert_eq!(sparse.scores.score(A), 1.0);
//!
//! // Batches: sequential on one session, or parallel across per-thread
//! // sessions with outputs in input order.
//! let queries: Vec<Query> = (0..4).map(|v| Query::SingleSource { node: v }).collect();
//! let batch = engine.par_batch(&graph, &queries, 2)?;
//! assert_eq!(batch.outputs.len(), 4);
//! # Ok::<(), probesim_core::QueryError>(())
//! ```
//!
//! One-shot convenience wrappers ([`ProbeSim::single_source`],
//! [`ProbeSim::top_k`] and their fallible `try_` variants) spin up a
//! throwaway session and, for the dense view, materialize
//! [`SingleSourceResult`] — the paper-reproduction benches keep using
//! them.
//!
//! ## Cooperative cancellation
//!
//! Index-free queries decide their cost *while running*, so a serving
//! tier needs a way to bound one: [`session::QuerySession::run_with_budget`]
//! executes under a [`ProbeBudget`] — a wall-clock deadline and/or a
//! deterministic work cap — checked between level expansions in both
//! probe engines. An exceeded budget aborts cooperatively as
//! [`QueryError::DeadlineExceeded`] / [`QueryError::WorkBudgetExceeded`]
//! carrying the partial counters, and the session stays fully reusable:
//! the next query is bit-identical to one on a fresh session (the
//! abort-safety property tests pin this down for every engine tier and
//! backend).
//!
//! ## How it works
//!
//! SimRank equals the meeting probability of two √c-walks (random walks
//! along in-edges that die with probability `1 − √c` per step). ProbeSim
//! samples `nr = (3c/ε²)·ln(n/δ)` walks from `u` only; for each walk prefix
//! `(u1..ui)` it runs **PROBE** — a forward traversal from `ui` that computes
//! for *every* node `v` the exact probability that a √c-walk from `v` first
//! meets the prefix at `ui` ([`probe::deterministic`]). Summing probe scores
//! within a trial and averaging across trials yields an unbiased estimator
//! (Lemma 1 of the paper).
//!
//! ## Optimizations (Section 4 of the paper, plus the fused engine)
//!
//! * walk truncation and score pruning ([`config::ErrorBudget`],
//!   pruning rules 1 & 2),
//! * batching walks in a reverse-reachability trie so shared prefixes are
//!   probed once ([`trie::WalkTrie`]),
//! * a randomized O(n) PROBE ([`probe::randomized`]) and the
//!   deterministic→randomized hybrid ([`probe::hybrid`]) that gives the
//!   `O(n/εa²·log(n/δ))` worst case with deterministic speed on the
//!   common path.
//!
//! ### The three probe-batching tiers
//!
//! PROBE traversals dominate query cost, and three batching tiers trade
//! increasingly more shared work for them:
//!
//! 1. **Per walk** (Algorithm 1; `batch_walks = false`) — every prefix of
//!    every √c-walk runs an independent probe.
//! 2. **Per distinct prefix** (Algorithm 3; `batch_walks = true`,
//!    `fuse_probes = false`) — walks sharing a prefix are probed once,
//!    scaled by the prefix weight. A graph node reached at the same
//!    position by *different* prefixes is still re-expanded per prefix.
//! 3. **Fused frontiers** ([`frontier`]; `fuse_probes = true`, the
//!    default) — the whole query runs as one level-synchronous weighted
//!    sweep over the trie, expanding each distinct `(node, trie
//!    position)` at most once. Deterministic math is equivalent up to
//!    floating-point association; randomized draws get a
//!    weight-proportional trial budget so unbiasedness and concentration
//!    are preserved. [`QueryStats::frontier_merges`] counts the
//!    expansions tier 2 would have repeated.
//!
//! Tier 3 helps most on probe-heavy workloads — locally dense graphs,
//! tight `εa` (many walks → heavy prefix sharing), long walks — where the
//! same frontier regions are re-expanded by many prefixes; run
//! `probesim-bench --scenarios probe_static_fused,probe_static_legacy
//! --contrast out.json` (or the `probesim` CLI's `--probe-path
//! fused|legacy`) to A/B the tiers on identical seeds and compare
//! `edges_expanded`/`total_work`.
//!
//! ## The second engine: the contribution index
//!
//! The paper's engine is index-free; [`index`] adds the opposite
//! trade-off as a **second engine** behind the same query surface.
//! [`IndexEngine`] caches one truncated reverse-PPR contribution row
//! per source — the row is exactly the sparse single-source result, so
//! the first query on a source *is* the build (a normal probe run) and
//! later queries on it replay in `O(row)` with zero probe work.
//! Because the per-query RNG is keyed by `(seed, node)` only, a replay
//! is **bit-equal** to a fresh run for all three query kinds; an
//! optional `εi` truncation trades at most `εi` of additive error for
//! smaller rows.
//!
//! Rows carry the store version they were built at and replay only for
//! queries at *exactly* that version — under a live update stream
//! (wired via `GraphStore`'s mutation observer and drained lazily by
//! [`IndexEngine::repair_next`]) staleness costs a rebuild, never
//! correctness. [`plan`] is the adaptive per-query planner the service
//! tier uses under [`EngineChoice::Auto`]: replay fresh rows always,
//! build through only when access skew, `k`, `εp` and the deadline say
//! the row will pay for itself.

pub mod accum;
pub mod budget;
pub mod config;
pub mod frontier;
pub mod index;
pub mod par;
pub mod probe;
pub mod result;
pub mod session;
pub mod single_source;
pub mod topk;
pub mod trie;
pub mod walk;
pub mod workspace;

pub use accum::ScoreSink;
pub use budget::{BudgetExceeded, ProbeBudget};
pub use config::{ErrorBudget, Optimizations, ProbeSimConfig, ProbeStrategy};
pub use index::{
    plan, EngineChoice, EngineKind, EnginePlan, IndexEngine, ParseEngineChoiceError, PlanReason,
    PlannerInputs,
};
pub use result::{QueryStats, SingleSourceResult};
pub use session::{BatchOutput, Query, QueryError, QueryOutput, QuerySession, SparseScores};
pub use single_source::ProbeSim;
pub use topk::top_k_from_scores;
pub use trie::WalkTrie;
