#![warn(missing_docs)]
//! # probesim-core
//!
//! The ProbeSim algorithm (Liu et al., PVLDB 2017): index-free approximate
//! single-source and top-k SimRank with an absolute-error guarantee.
//!
//! Given a query node `u`, an error bound `εa` and a failure probability
//! `δ`, [`ProbeSim::single_source`] returns estimates `s̃(u, v)` for every
//! node `v` such that `|s̃(u, v) − s(u, v)| ≤ εa` for all `v` simultaneously
//! with probability at least `1 − δ` — with **no precomputed index**, which
//! is what makes real-time queries on dynamic graphs possible.
//!
//! ## How it works
//!
//! SimRank equals the meeting probability of two √c-walks (random walks
//! along in-edges that die with probability `1 − √c` per step). ProbeSim
//! samples `nr = (3c/ε²)·ln(n/δ)` walks from `u` only; for each walk prefix
//! `(u1..ui)` it runs **PROBE** — a forward traversal from `ui` that computes
//! for *every* node `v` the exact probability that a √c-walk from `v` first
//! meets the prefix at `ui` ([`probe::deterministic`]). Summing probe scores
//! within a trial and averaging across trials yields an unbiased estimator
//! (Lemma 1 of the paper).
//!
//! ## Optimizations (Section 4 of the paper)
//!
//! * walk truncation and score pruning ([`config::ErrorBudget`],
//!   pruning rules 1 & 2),
//! * batching walks in a reverse-reachability trie so shared prefixes are
//!   probed once ([`trie::WalkTrie`]),
//! * a randomized O(n) PROBE ([`probe::randomized`]) and the
//!   deterministic→randomized hybrid ([`probe::hybrid`]) that gives the
//!   `O(n/εa²·log(n/δ))` worst case with deterministic speed on the
//!   common path.
//!
//! ## Quick start
//!
//! ```
//! use probesim_core::{ProbeSim, ProbeSimConfig};
//! use probesim_graph::toy::{toy_graph, A, TOY_DECAY};
//!
//! let g = toy_graph();
//! let cfg = ProbeSimConfig::new(TOY_DECAY, 0.05, 0.01).with_seed(7);
//! let probesim = ProbeSim::new(cfg);
//! let result = probesim.single_source(&g, A);
//! // d is the most similar node to a (Table 2 of the paper).
//! let top = probesim.top_k(&g, A, 1);
//! assert_eq!(top[0].0, probesim_graph::toy::D);
//! # let _ = result;
//! ```

pub mod config;
pub mod probe;
pub mod result;
pub mod single_source;
pub mod topk;
pub mod trie;
pub mod walk;
pub mod workspace;

pub use config::{ErrorBudget, Optimizations, ProbeSimConfig, ProbeStrategy};
pub use result::{QueryStats, SingleSourceResult};
pub use single_source::ProbeSim;
pub use topk::top_k_from_scores;
pub use trie::WalkTrie;
