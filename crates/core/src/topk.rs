//! Top-k extraction from single-source score vectors.
//!
//! The paper's observation (Section 2.1): an approximate single-source
//! algorithm answers approximate top-k queries "by sorting the SimRank
//! estimations and output the top-k results" — every returned node's true
//! score is within `εa` of the true i-th largest.
//!
//! We avoid a full O(n log n) sort: `select_nth_unstable` partitions the
//! candidates in O(n), then only the k winners are sorted.

use probesim_graph::NodeId;

/// The `k` highest-scoring nodes (excluding `query`), descending by score
/// with node id as a deterministic tie-breaker. Returns fewer than `k`
/// entries only when the graph has fewer than `k + 1` nodes.
pub fn top_k_from_scores(scores: &[f64], query: NodeId, k: usize) -> Vec<(NodeId, f64)> {
    let mut candidates: Vec<(NodeId, f64)> = scores
        .iter()
        .enumerate()
        .filter(|&(v, _)| v as NodeId != query)
        .map(|(v, &s)| (v as NodeId, s))
        .collect();
    let k = k.min(candidates.len());
    if k == 0 {
        return Vec::new();
    }
    let cmp = |a: &(NodeId, f64), b: &(NodeId, f64)| {
        b.1.partial_cmp(&a.1)
            .expect("invariant: SimRank scores are never NaN")
            .then_with(|| a.0.cmp(&b.0))
    };
    if k < candidates.len() {
        candidates.select_nth_unstable_by(k - 1, cmp);
        candidates.truncate(k);
    }
    candidates.sort_unstable_by(cmp);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_highest_scores_in_order() {
        let scores = vec![0.1, 0.9, 0.5, 0.7, 0.3];
        let top = top_k_from_scores(&scores, 0, 3);
        assert_eq!(top, vec![(1, 0.9), (3, 0.7), (2, 0.5)]);
    }

    #[test]
    fn excludes_the_query_node() {
        let scores = vec![1.0, 0.2, 0.4];
        let top = top_k_from_scores(&scores, 0, 3);
        assert_eq!(top, vec![(2, 0.4), (1, 0.2)]);
    }

    #[test]
    fn ties_break_by_node_id() {
        let scores = vec![0.0, 0.5, 0.5, 0.5];
        let top = top_k_from_scores(&scores, 0, 2);
        assert_eq!(top, vec![(1, 0.5), (2, 0.5)]);
    }

    #[test]
    fn k_larger_than_graph_is_clamped() {
        let scores = vec![0.3, 0.1];
        let top = top_k_from_scores(&scores, 1, 10);
        assert_eq!(top, vec![(0, 0.3)]);
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(top_k_from_scores(&[0.1, 0.2], 0, 0).is_empty());
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        // Deterministic pseudo-random scores; compare against a full sort.
        let scores: Vec<f64> = (0..500)
            .map(|i| ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0)
            .collect();
        let k = 37;
        let fast = top_k_from_scores(&scores, 13, k);
        let mut slow: Vec<(NodeId, f64)> = scores
            .iter()
            .enumerate()
            .filter(|&(v, _)| v != 13)
            .map(|(v, &s)| (v as NodeId, s))
            .collect();
        slow.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        slow.truncate(k);
        assert_eq!(fast, slow);
    }
}
