//! The second engine: a PRSim-style precomputed contribution index,
//! maintained incrementally, plus the adaptive per-query planner that
//! picks between it and the index-free ProbeSim engine.
//!
//! ProbeSim (the paper) is deliberately index-free; PRSim (Wei et al.,
//! VLDB 2019) showed that a lightweight precomputed table of reverse-PPR
//! contributions makes single-source SimRank sublinear on power-law
//! graphs. This module is that second tier, adapted to the session
//! architecture around it:
//!
//! * **One row per source.** All three query kinds ([`Query`]) share one
//!   single-source computation — the kind only changes post-processing
//!   of the same [`SparseScores`]. So a row is the drained sparse score
//!   vector of one fused-engine run: the `(node, level, weight)` entries
//!   of every touched node, stored struct-of-arrays (u32 node and level
//!   lanes, f64 weight lane) in one flat arena with per-source spans —
//!   the same SoA layout the frontier engine uses for its arena. One
//!   row answers `SingleSource`, `TopK` *and* `Threshold` for its
//!   source, bit-equal to a fresh run at the row's version.
//! * **Version-stamped freshness.** Every row carries the store version
//!   it was built at. The store's version counts *effective* mutations,
//!   so `row.stamp == snapshot.version()` implies identical edge sets —
//!   a replay is then exactly the answer a fresh run would produce. A
//!   query at any other version falls back to an on-the-fly probe run
//!   ([`IndexEngine::run`]'s build-through path), which doubles as the
//!   row rebuild. Answers therefore stay correct mid-repair: stale rows
//!   are never trusted, only bypassed.
//! * **Incremental maintenance.** [`IndexEngine::note_update`] — wired
//!   to `GraphStore`'s mutation observer by the service tier — marks the
//!   cached rows stale and feeds them into a dirty-source queue that
//!   [`IndexEngine::repair_next`] drains lazily, one recompute per call,
//!   off the query path.
//! * **`εi` truncation.** [`IndexEngine::with_epsilon_i`] drops stored
//!   entries whose raw contribution is below `εi`, shrinking rows at the
//!   cost of an extra additive error of at most `εi` on replayed
//!   answers. The default `εi = 0` keeps replays bit-equal.
//!
//! The planner ([`plan`]) maps a per-query [`EngineChoice`] plus
//! [`PlannerInputs`] — graph skew (in-degree Gini), `k`, the accuracy
//! budget `εa`, the remaining deadline and row freshness — to an
//! [`EnginePlan`] naming the engine that should answer and why. The
//! policy is a deterministic decision list, so engine selection is a
//! pure function of the inputs and CI can fingerprint it.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

use probesim_graph::{GraphView, NodeId};

use crate::budget::ProbeBudget;
use crate::result::QueryStats;
use crate::session::{Query, QueryError, QueryOutput, QuerySession, SparseScores};

/// Which engine a request asks for.
///
/// `Auto` delegates to the adaptive planner ([`plan`]); the other two
/// force an engine for A/B comparison. The wire form (`probesim` /
/// `index` / `auto`) is shared by the CLI `--engine` flag and the
/// service request API, exactly like the `Consistency` wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineChoice {
    /// Force the index-free ProbeSim engine.
    #[default]
    Probesim,
    /// Force the contribution-index engine (replay or build-through).
    Index,
    /// Let the planner decide per query.
    Auto,
}

impl fmt::Display for EngineChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineChoice::Probesim => write!(f, "probesim"),
            EngineChoice::Index => write!(f, "index"),
            EngineChoice::Auto => write!(f, "auto"),
        }
    }
}

/// Error parsing an [`EngineChoice`] from its wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineChoiceError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseEngineChoiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid engine {:?} (expected probesim, index or auto)",
            self.input
        )
    }
}

impl std::error::Error for ParseEngineChoiceError {}

impl FromStr for EngineChoice {
    type Err = ParseEngineChoiceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "probesim" => Ok(EngineChoice::Probesim),
            "index" => Ok(EngineChoice::Index),
            "auto" => Ok(EngineChoice::Auto),
            other => Err(ParseEngineChoiceError {
                input: other.to_string(),
            }),
        }
    }
}

/// The engine that actually answered a query (what `Auto` resolved to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The index-free ProbeSim engine.
    Probesim,
    /// The contribution-index engine.
    Index,
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::Probesim => write!(f, "probesim"),
            EngineKind::Index => write!(f, "index"),
        }
    }
}

/// Why the planner picked the engine it picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanReason {
    /// The request forced an engine (`EngineChoice::Probesim` / `Index`).
    Forced,
    /// A fresh row exists at the query's version: replay is free.
    FreshRow,
    /// Skewed graph + loose accuracy budget + roomy deadline: paying the
    /// build-through now makes future queries on this source replays.
    SkewBuildThrough,
    /// Index conditions held but the deadline is too tight to risk a
    /// build-through; the index-free engine answers.
    TightDeadline,
    /// Nothing argued for the index: the index-free engine answers.
    Default,
}

/// The planner's verdict for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnginePlan {
    /// The engine that should answer.
    pub engine: EngineKind,
    /// Why.
    pub reason: PlanReason,
}

/// What the planner looks at for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerInputs {
    /// In-degree Gini coefficient of the graph
    /// ([`probesim_graph::DegreeStats::in_degree_gini`]): the skew proxy.
    /// Power-law graphs (where PRSim-style indexes shine) score high.
    pub skew: f64,
    /// `k` for top-k queries, `None` otherwise. Currently informational:
    /// every kind replays the same row, so `k` does not flip the
    /// decision — it is threaded through so a finer policy can use it
    /// without an API break.
    pub k: Option<usize>,
    /// The engine accuracy parameter `εa`: a loose budget keeps rows
    /// small (fewer walks, shallower probes), which is when the
    /// build-through gamble pays off fastest.
    pub epsilon: f64,
    /// Remaining deadline, if the request armed one.
    pub deadline: Option<Duration>,
    /// Whether the index holds a fresh row for the query's source at the
    /// query's version.
    pub row_fresh: bool,
}

/// Skew floor (in-degree Gini) above which `Auto` considers a
/// build-through worthwhile. Regular graphs (ring ≈ 0) stay on the
/// index-free engine; power-law graphs (Wiki-Vote-like ≫ 0.5) cross it.
pub const SKEW_THRESHOLD: f64 = 0.5;

/// Accuracy budget floor for a build-through: below this `εa` rows are
/// large (walk count scales with `1/εa²`) and caching them speculatively
/// is a poor bet.
pub const LOOSE_EPSILON: f64 = 0.05;

/// Minimum remaining deadline for `Auto` to risk a build-through (a
/// build costs one full probe run; replays are the payoff).
pub const BUILD_DEADLINE_FLOOR: Duration = Duration::from_millis(100);

/// The adaptive planner: a deterministic decision list from
/// [`PlannerInputs`] to an [`EnginePlan`].
///
/// * A forced choice wins unconditionally.
/// * `Auto` replays a fresh row whenever one exists — a replay is
///   strictly cheaper than any probe run and bit-equal by construction.
/// * Otherwise `Auto` pays a build-through only where the index is
///   likely to win later: skewed graph ([`SKEW_THRESHOLD`]), loose
///   accuracy budget ([`LOOSE_EPSILON`]) and a deadline that can absorb
///   one full probe run ([`BUILD_DEADLINE_FLOOR`]).
/// * Everything else goes to the index-free engine.
pub fn plan(choice: EngineChoice, inputs: &PlannerInputs) -> EnginePlan {
    match choice {
        EngineChoice::Probesim => EnginePlan {
            engine: EngineKind::Probesim,
            reason: PlanReason::Forced,
        },
        EngineChoice::Index => EnginePlan {
            engine: EngineKind::Index,
            reason: PlanReason::Forced,
        },
        EngineChoice::Auto => {
            if inputs.row_fresh {
                return EnginePlan {
                    engine: EngineKind::Index,
                    reason: PlanReason::FreshRow,
                };
            }
            if inputs.skew >= SKEW_THRESHOLD && inputs.epsilon >= LOOSE_EPSILON {
                return match inputs.deadline {
                    Some(d) if d < BUILD_DEADLINE_FLOOR => EnginePlan {
                        engine: EngineKind::Probesim,
                        reason: PlanReason::TightDeadline,
                    },
                    _ => EnginePlan {
                        engine: EngineKind::Index,
                        reason: PlanReason::SkewBuildThrough,
                    },
                };
            }
            EnginePlan {
                engine: EngineKind::Probesim,
                reason: PlanReason::Default,
            }
        }
    }
}

/// Per-source row metadata: a span into the SoA arena plus the facts
/// needed to reconstruct the row's [`SparseScores`] verbatim.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RowMeta {
    /// Span start in the arena lanes.
    start: usize,
    /// Span length (entry count).
    len: usize,
    /// Store version the row was built at. Fresh iff it equals the
    /// queried snapshot's version (equal versions ⇒ identical edge sets).
    stamp: u64,
    /// The implicit score of untouched nodes at build time (`εt/2` under
    /// truncation compensation, else 0).
    baseline: f64,
    /// Node count of the graph the row was built on (a replay refuses a
    /// mismatch — stores pin `n`, but the table cannot assume a store).
    num_nodes: usize,
}

/// The contribution table: per-source sparse rows in one flat
/// struct-of-arrays arena (u32 `node` / u32 `level` lanes, f64 `weight`
/// lane), mirroring the frontier engine's SoA arena layout.
///
/// Replaced rows leave dead spans behind; the arena compacts itself once
/// dead entries outnumber live ones (amortized O(1) per stored entry).
/// Capacity is bounded by a row count; the oldest-installed row is
/// evicted first.
#[derive(Debug, Clone)]
pub struct ContributionTable {
    /// Touched node ids, external labels, ascending within each span.
    nodes: Vec<u32>,
    /// Probe depth the row's build sweep expanded (uniform per row
    /// today: the fused engine reports one `levels_expanded` per query;
    /// a per-entry depth would need the engine to emit it per node).
    levels: Vec<u32>,
    /// Raw accumulated scores (baseline not applied) — exactly what
    /// [`SparseScores`] stores internally, so replays are bit-equal.
    weights: Vec<f64>,
    rows: BTreeMap<NodeId, RowMeta>,
    /// Installation order, oldest first, for capacity eviction.
    order: VecDeque<NodeId>,
    /// Dead (replaced/evicted) entries still occupying the arena.
    dead: usize,
    max_rows: usize,
}

/// Default row-count capacity of the table.
pub const DEFAULT_MAX_ROWS: usize = 1024;

/// Compaction floor: arenas smaller than this never compact (the copy
/// would cost more than the slack is worth).
const COMPACT_MIN_ENTRIES: usize = 4096;

impl ContributionTable {
    fn new(max_rows: usize) -> Self {
        ContributionTable {
            nodes: Vec::new(),
            levels: Vec::new(),
            weights: Vec::new(),
            rows: BTreeMap::new(),
            order: VecDeque::new(),
            dead: 0,
            max_rows: max_rows.max(1),
        }
    }

    /// Number of cached rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Live entries across all rows.
    pub fn live_entries(&self) -> usize {
        self.nodes.len() - self.dead
    }

    /// Dead (replaced) entries awaiting compaction.
    pub fn dead_entries(&self) -> usize {
        self.dead
    }

    fn meta(&self, source: NodeId) -> Option<&RowMeta> {
        self.rows.get(&source)
    }

    fn remove(&mut self, source: NodeId) {
        if let Some(meta) = self.rows.remove(&source) {
            self.dead += meta.len;
            self.order.retain(|&s| s != source);
        }
    }

    fn push_row(
        &mut self,
        source: NodeId,
        stamp: u64,
        num_nodes: usize,
        baseline: f64,
        level: u32,
        entries: impl Iterator<Item = (NodeId, f64)>,
    ) {
        self.remove(source);
        while self.rows.len() >= self.max_rows {
            let oldest = self
                .order
                .front()
                .copied()
                .expect("invariant: a non-empty table has an install order");
            self.remove(oldest);
        }
        let start = self.nodes.len();
        for (node, weight) in entries {
            self.nodes.push(node);
            self.levels.push(level);
            self.weights.push(weight);
        }
        let len = self.nodes.len() - start;
        self.rows.insert(
            source,
            RowMeta {
                start,
                len,
                stamp,
                baseline,
                num_nodes,
            },
        );
        self.order.push_back(source);
        self.maybe_compact();
    }

    /// Compacts the arena when dead entries outnumber live ones: copies
    /// each live span (in source order — `rows` is a BTreeMap, so the
    /// rebuilt layout is deterministic) into fresh lanes.
    fn maybe_compact(&mut self) {
        if self.dead < COMPACT_MIN_ENTRIES || self.dead <= self.live_entries() {
            return;
        }
        let live = self.live_entries();
        let mut nodes = Vec::with_capacity(live);
        let mut levels = Vec::with_capacity(live);
        let mut weights = Vec::with_capacity(live);
        for meta in self.rows.values_mut() {
            let start = nodes.len();
            let span = meta.start..meta.start + meta.len;
            let lanes = self
                .nodes
                .get(span.clone())
                .zip(self.levels.get(span.clone()))
                .zip(self.weights.get(span))
                .expect("invariant: row spans lie inside the arena lanes");
            let ((node_lane, level_lane), weight_lane) = lanes;
            nodes.extend_from_slice(node_lane);
            levels.extend_from_slice(level_lane);
            weights.extend_from_slice(weight_lane);
            meta.start = start;
        }
        self.nodes = nodes;
        self.levels = levels;
        self.weights = weights;
        self.dead = 0;
    }
}

/// The contribution-index engine.
///
/// Owns a [`ContributionTable`] plus the dirty-source repair queue, and
/// composes with a [`QuerySession`] for builds and repairs. It is
/// single-threaded by design — the service tier wraps it in a `Mutex`
/// and keeps the critical sections short (replay out / install in); a
/// build-through's probe run happens *outside* any lock.
///
/// ### Correctness contract
///
/// Callers pass the **version of the graph the session is bound to**.
/// Replays only ever serve rows stamped with exactly that version, so an
/// answer can never come from a different edge set than the one the
/// caller asked about — regardless of whether `note_update` has caught
/// up, which updates were effective, or how far the lazy repair queue
/// has drained. Staleness makes the index slower, never wrong.
#[derive(Debug, Clone)]
pub struct IndexEngine {
    epsilon_i: f64,
    table: ContributionTable,
    dirty: VecDeque<NodeId>,
    dirty_set: BTreeSet<NodeId>,
    latest_version: u64,
    rows_built: u64,
    rows_replayed: u64,
    repairs: u64,
}

impl Default for IndexEngine {
    fn default() -> Self {
        IndexEngine::new()
    }
}

impl IndexEngine {
    /// A lossless (`εi = 0`) engine with the default row capacity.
    pub fn new() -> Self {
        IndexEngine {
            epsilon_i: 0.0,
            table: ContributionTable::new(DEFAULT_MAX_ROWS),
            dirty: VecDeque::new(),
            dirty_set: BTreeSet::new(),
            latest_version: 0,
            rows_built: 0,
            rows_replayed: 0,
            repairs: 0,
        }
    }

    /// Sets the `εi` truncation threshold: stored entries with raw
    /// contribution below `εi` are dropped, trading at most `εi` of
    /// additive error on replayed answers for smaller rows. `0` (the
    /// default) keeps replays bit-equal to fresh runs.
    pub fn with_epsilon_i(mut self, epsilon_i: f64) -> Self {
        self.epsilon_i = epsilon_i.max(0.0);
        self
    }

    /// Bounds the table to `max_rows` cached sources (oldest evicted).
    pub fn with_max_rows(mut self, max_rows: usize) -> Self {
        self.table.max_rows = max_rows.max(1);
        self
    }

    /// The `εi` truncation threshold.
    pub fn epsilon_i(&self) -> f64 {
        self.epsilon_i
    }

    /// The table (row/entry introspection).
    pub fn table(&self) -> &ContributionTable {
        &self.table
    }

    /// Sources queued for lazy repair.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Rows installed over the engine's lifetime (builds + repairs).
    pub fn rows_built(&self) -> u64 {
        self.rows_built
    }

    /// Queries answered by replaying a fresh row.
    pub fn rows_replayed(&self) -> u64 {
        self.rows_replayed
    }

    /// Rows rebuilt off the query path by [`IndexEngine::repair_next`].
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Latest store version seen via [`IndexEngine::note_update`].
    pub fn latest_version(&self) -> u64 {
        self.latest_version
    }

    /// True when a replay could answer a query on `source` at `version`
    /// against a graph of `num_nodes` nodes.
    pub fn row_fresh(&self, source: NodeId, version: u64, num_nodes: usize) -> bool {
        self.table
            .meta(source)
            .is_some_and(|meta| meta.stamp == version && meta.num_nodes == num_nodes)
    }

    /// Feeds one effective store mutation (the new version) into the
    /// dirty queue: every cached row built before `version` is now
    /// stale and queued for lazy recompute.
    ///
    /// This is what the service wires to `GraphStore`'s mutation
    /// observer. Correctness never depends on it being called — replays
    /// check stamps against the query's own version — it only keeps the
    /// repair queue informed so [`IndexEngine::repair_next`] has work.
    pub fn note_update(&mut self, version: u64) {
        self.latest_version = self.latest_version.max(version);
        for (&source, meta) in self.table.rows.iter() {
            if meta.stamp < version && self.dirty_set.insert(source) {
                self.dirty.push_back(source);
            }
        }
    }

    /// Pops the next repair candidate off the dirty queue: a source
    /// whose row is still cached and still stale at `version`. Queued
    /// sources whose rows were evicted or already rebuilt are silently
    /// skipped. Callers that cannot hold the engine across a probe run
    /// (the service tier keeps it behind a mutex with short critical
    /// sections) pair this with an unlocked rebuild followed by
    /// [`IndexEngine::install_row`] on success or
    /// [`IndexEngine::discard_row`] on failure; single-threaded callers
    /// use [`IndexEngine::repair_next`], which does exactly that.
    pub fn pop_dirty(&mut self, version: u64) -> Option<NodeId> {
        loop {
            let source = self.dirty.pop_front()?;
            self.dirty_set.remove(&source);
            let stale = self
                .table
                .meta(source)
                .is_some_and(|meta| meta.stamp != version);
            if stale {
                return Some(source);
            }
        }
    }

    /// Drops the cached row for `source` — a rebuild failed (e.g. the
    /// source is out of range for the current graph), so the table must
    /// not keep advertising a row it cannot refresh. A later query on
    /// the source simply builds through again.
    pub fn discard_row(&mut self, source: NodeId) {
        self.table.remove(source);
    }

    /// Rebuilds one queued stale row at `version` (the version of the
    /// graph `session` is bound to), off the query path. Returns the
    /// repaired source, or `None` when the queue holds no row that is
    /// still cached and still stale. Rows that fail to recompute (e.g.
    /// the source is out of range for the session's graph) are dropped
    /// from the table instead of being repaired.
    pub fn repair_next<G: GraphView + Sync>(
        &mut self,
        session: &mut QuerySession<G>,
        version: u64,
    ) -> Option<NodeId> {
        loop {
            let source = self.pop_dirty(version)?;
            let rebuilt = session.run_with_budget(
                Query::SingleSource { node: source },
                ProbeBudget::unlimited(),
            );
            match rebuilt {
                Ok(output) => {
                    self.install_row(version, &output);
                    self.repairs += 1;
                    return Some(source);
                }
                Err(_) => {
                    self.discard_row(source);
                    continue;
                }
            }
        }
    }

    /// Answers `query` from a fresh row at `version`, or `None` when the
    /// row is absent, stale, or built on a different node count.
    ///
    /// A replay charges [`QueryStats::index_rows_used`] with the entry
    /// count it copied (its true cost — an `O(row)` reconstruction) and
    /// marks the answer index-engine-produced via
    /// [`QueryStats::planner_engine`]; no probe counters move. Replays
    /// ignore work budgets: the cost is bounded by the row that already
    /// exists.
    pub fn replay(&mut self, query: Query, version: u64, num_nodes: usize) -> Option<QueryOutput> {
        crate::session::validate_shape(&query).ok()?;
        let source = query.node();
        if (source as usize) >= num_nodes {
            return None;
        }
        let meta = *self.table.meta(source)?;
        if meta.stamp != version || meta.num_nodes != num_nodes {
            return None;
        }
        let span = meta.start..meta.start + meta.len;
        let node_lane = self.table.nodes.get(span.clone())?;
        let weight_lane = self.table.weights.get(span)?;
        let entries: Vec<(NodeId, f64)> = node_lane
            .iter()
            .copied()
            .zip(weight_lane.iter().copied())
            .collect();
        let scores = SparseScores::new(source, meta.num_nodes, meta.baseline, entries);
        let stats = QueryStats {
            index_rows_used: meta.len,
            planner_engine: 1,
            ..QueryStats::default()
        };
        self.rows_replayed += 1;
        Some(QueryOutput {
            query,
            scores,
            stats,
        })
    }

    /// Installs (or replaces) the row for `output`'s source, stamped
    /// `version` — the version of the graph that produced `output`.
    /// Entries below `εi` are dropped; the level lane records the probe
    /// depth the build expanded ([`QueryStats::levels_expanded`]).
    pub fn install_row(&mut self, version: u64, output: &QueryOutput) {
        let epsilon_i = self.epsilon_i;
        let level = output.stats.levels_expanded.min(u32::MAX as usize) as u32;
        self.table.push_row(
            output.scores.query(),
            version,
            output.scores.num_nodes(),
            output.scores.baseline(),
            level,
            output
                .scores
                .raw_entries()
                .iter()
                .copied()
                .filter(|&(_, w)| w >= epsilon_i),
        );
        self.rows_built += 1;
    }

    /// Runs `query` through the index engine against the graph `session`
    /// is bound to (whose edge set must be exactly `version`).
    ///
    /// Fresh row → replay. Otherwise the fallback **is** the rebuild: a
    /// normal budgeted probe run answers the query, its result is
    /// installed as the new row, and the output is additionally charged
    /// [`QueryStats::index_rows_stale`] (the index was consulted and
    /// could not serve) and [`QueryStats::planner_engine`]. An aborted
    /// run (deadline / work cap) surfaces its [`QueryError`] unchanged
    /// and installs nothing — partial scores never enter the table.
    pub fn run<G: GraphView + Sync>(
        &mut self,
        session: &mut QuerySession<G>,
        version: u64,
        query: Query,
        budget: ProbeBudget,
    ) -> Result<QueryOutput, QueryError> {
        let num_nodes = session.graph().num_nodes();
        if let Some(output) = self.replay(query, version, num_nodes) {
            return Ok(output);
        }
        let mut output = session.run_with_budget(query, budget)?;
        output.stats.index_rows_stale = 1;
        output.stats.planner_engine = 1;
        self.install_row(version, &output);
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProbeSimConfig;
    use crate::single_source::ProbeSim;
    use probesim_graph::toy::{toy_graph, A, B, TOY_DECAY};

    fn engine() -> ProbeSim {
        ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, 0.05, 0.01).with_seed(7))
    }

    #[test]
    fn engine_choice_wire_form_round_trips() {
        for choice in [
            EngineChoice::Probesim,
            EngineChoice::Index,
            EngineChoice::Auto,
        ] {
            let wire = choice.to_string();
            assert_eq!(wire.parse::<EngineChoice>().unwrap(), choice);
        }
        assert_eq!(
            "prsim".parse::<EngineChoice>(),
            Err(ParseEngineChoiceError {
                input: "prsim".to_string()
            })
        );
        let err = "??".parse::<EngineChoice>().unwrap_err();
        assert!(err.to_string().contains("expected probesim, index or auto"));
        assert_eq!(EngineChoice::default(), EngineChoice::Probesim);
    }

    #[test]
    fn engine_kind_displays_like_the_choice_wire_form() {
        assert_eq!(EngineKind::Probesim.to_string(), "probesim");
        assert_eq!(EngineKind::Index.to_string(), "index");
    }

    #[test]
    fn planner_decision_list() {
        let base = PlannerInputs {
            skew: 0.8,
            k: None,
            epsilon: 0.1,
            deadline: None,
            row_fresh: false,
        };
        // Forced choices win unconditionally.
        for (choice, engine) in [
            (EngineChoice::Probesim, EngineKind::Probesim),
            (EngineChoice::Index, EngineKind::Index),
        ] {
            let p = plan(choice, &base);
            assert_eq!((p.engine, p.reason), (engine, PlanReason::Forced));
        }
        // Fresh row: replay, regardless of skew.
        let p = plan(
            EngineChoice::Auto,
            &PlannerInputs {
                skew: 0.0,
                row_fresh: true,
                ..base
            },
        );
        assert_eq!(
            (p.engine, p.reason),
            (EngineKind::Index, PlanReason::FreshRow)
        );
        // Skewed + loose εa + roomy deadline: build-through.
        let p = plan(EngineChoice::Auto, &base);
        assert_eq!(
            (p.engine, p.reason),
            (EngineKind::Index, PlanReason::SkewBuildThrough)
        );
        // Same but the deadline cannot absorb a build.
        let p = plan(
            EngineChoice::Auto,
            &PlannerInputs {
                deadline: Some(Duration::from_millis(5)),
                ..base
            },
        );
        assert_eq!(
            (p.engine, p.reason),
            (EngineKind::Probesim, PlanReason::TightDeadline)
        );
        // Regular graph or tight εa: nothing argues for the index.
        for inputs in [
            PlannerInputs { skew: 0.1, ..base },
            PlannerInputs {
                epsilon: 0.01,
                ..base
            },
        ] {
            let p = plan(EngineChoice::Auto, &inputs);
            assert_eq!(
                (p.engine, p.reason),
                (EngineKind::Probesim, PlanReason::Default)
            );
        }
    }

    #[test]
    fn replay_is_bit_equal_across_all_query_kinds() {
        let graph = toy_graph();
        let engine = engine();
        let mut session = engine.session(&graph);
        let mut index = IndexEngine::new();
        let queries = [
            Query::SingleSource { node: A },
            Query::TopK { node: A, k: 3 },
            Query::Threshold { node: A, tau: 0.01 },
        ];
        // First query builds through; the rest replay the same row.
        for (i, &query) in queries.iter().enumerate() {
            let via_index = index
                .run(&mut session, 0, query, ProbeBudget::unlimited())
                .unwrap();
            let direct = session.run(query).unwrap();
            assert_eq!(via_index.scores, direct.scores, "query #{i}");
            assert_eq!(via_index.ranking(), direct.ranking(), "query #{i}");
            assert_eq!(via_index.stats.planner_engine, 1);
            if i == 0 {
                assert_eq!(via_index.stats.index_rows_stale, 1);
                assert!(via_index.stats.walks > 0, "build-through does probe work");
            } else {
                assert_eq!(via_index.stats.index_rows_used, via_index.scores.len());
                assert_eq!(via_index.stats.walks, 0, "replays do zero probe work");
                assert_eq!(via_index.stats.total_work(), via_index.scores.len());
            }
        }
        assert_eq!(index.rows_built(), 1);
        assert_eq!(index.rows_replayed(), 2);
    }

    #[test]
    fn stale_rows_are_bypassed_and_rebuilt() {
        let graph = toy_graph();
        let engine = engine();
        let mut session = engine.session(&graph);
        let mut index = IndexEngine::new();
        let query = Query::SingleSource { node: A };
        index
            .run(&mut session, 0, query, ProbeBudget::unlimited())
            .unwrap();
        assert!(index.row_fresh(A, 0, graph.num_nodes()));
        // An update lands: version moves to 1, the row goes stale.
        index.note_update(1);
        assert!(!index.row_fresh(A, 1, graph.num_nodes()));
        assert_eq!(index.dirty_len(), 1);
        // A query at version 1 must not trust the version-0 row.
        let out = index
            .run(&mut session, 1, query, ProbeBudget::unlimited())
            .unwrap();
        assert_eq!(out.stats.index_rows_stale, 1);
        assert!(index.row_fresh(A, 1, graph.num_nodes()));
        // ... and a pinned query back at version 0 must not trust the
        // version-1 row either: stamps match exactly, not at-least.
        assert!(!index.row_fresh(A, 0, graph.num_nodes()));
        assert!(index.replay(query, 0, graph.num_nodes()).is_none());
    }

    #[test]
    fn repair_drains_the_dirty_queue_off_the_query_path() {
        let graph = toy_graph();
        let engine = engine();
        let mut session = engine.session(&graph);
        let mut index = IndexEngine::new();
        for node in [A, B] {
            index
                .run(
                    &mut session,
                    0,
                    Query::SingleSource { node },
                    ProbeBudget::unlimited(),
                )
                .unwrap();
        }
        index.note_update(1);
        assert_eq!(index.dirty_len(), 2);
        // BTreeSet-backed queue order is deterministic: insertion order.
        assert_eq!(index.repair_next(&mut session, 1), Some(A));
        assert_eq!(index.repair_next(&mut session, 1), Some(B));
        assert_eq!(index.repair_next(&mut session, 1), None);
        assert_eq!(index.repairs(), 2);
        // Repaired rows replay without fallback.
        let out = index
            .run(
                &mut session,
                1,
                Query::SingleSource { node: A },
                ProbeBudget::unlimited(),
            )
            .unwrap();
        assert_eq!(out.stats.index_rows_stale, 0);
        assert!(out.stats.index_rows_used > 0);
        // Repairing rows that were already rebuilt is a no-op.
        index.note_update(1);
        assert_eq!(index.repair_next(&mut session, 1), None);
    }

    #[test]
    fn epsilon_i_truncates_rows_with_bounded_error() {
        let graph = toy_graph();
        let engine = engine();
        let mut session = engine.session(&graph);
        let query = Query::SingleSource { node: A };
        let direct = session.run(query).unwrap();
        let epsilon_i = 0.05;
        let mut index = IndexEngine::new().with_epsilon_i(epsilon_i);
        index
            .run(&mut session, 0, query, ProbeBudget::unlimited())
            .unwrap();
        let replay = index.replay(query, 0, graph.num_nodes()).unwrap();
        assert!(replay.scores.len() <= direct.scores.len());
        for v in 0..graph.num_nodes() as NodeId {
            let err = (replay.scores.score(v) - direct.scores.score(v)).abs();
            assert!(err <= epsilon_i, "node {v}: error {err} > εi");
        }
    }

    #[test]
    fn capacity_evicts_oldest_and_arena_compacts() {
        let graph = toy_graph();
        let engine = engine();
        let mut session = engine.session(&graph);
        let mut index = IndexEngine::new().with_max_rows(2);
        for node in 0..4u32 {
            index
                .run(
                    &mut session,
                    0,
                    Query::SingleSource { node },
                    ProbeBudget::unlimited(),
                )
                .unwrap();
        }
        assert_eq!(index.table().rows(), 2);
        // The two newest rows survive.
        assert!(index
            .replay(Query::SingleSource { node: 0 }, 0, graph.num_nodes())
            .is_none());
        assert!(index
            .replay(Query::SingleSource { node: 3 }, 0, graph.num_nodes())
            .is_some());
        // Dead spans are tracked and compaction rebuilds deterministically.
        assert!(index.table().dead_entries() > 0 || index.table().live_entries() > 0);
        let mut table = index.table().clone();
        table.dead = table.nodes.len(); // force: everything dead
        table.rows.clear();
        table.order.clear();
        table.maybe_compact();
        if table.nodes.len() >= COMPACT_MIN_ENTRIES {
            assert_eq!(table.dead_entries(), 0);
        }
    }

    #[test]
    fn invalid_queries_never_replay() {
        let graph = toy_graph();
        let engine = engine();
        let mut session = engine.session(&graph);
        let mut index = IndexEngine::new();
        index
            .run(
                &mut session,
                0,
                Query::SingleSource { node: A },
                ProbeBudget::unlimited(),
            )
            .unwrap();
        // Shape-invalid queries fall through to the session's typed error
        // even when a fresh row exists for the source.
        assert!(index
            .replay(Query::TopK { node: A, k: 0 }, 0, graph.num_nodes())
            .is_none());
        let err = index
            .run(
                &mut session,
                0,
                Query::TopK { node: A, k: 0 },
                ProbeBudget::unlimited(),
            )
            .unwrap_err();
        assert_eq!(err, QueryError::InvalidK { k: 0 });
        // Out-of-range sources cannot replay either.
        let oob = graph.num_nodes() as NodeId;
        assert!(index
            .replay(Query::SingleSource { node: oob }, 0, graph.num_nodes())
            .is_none());
    }
}
