//! The fused probe engine: level-synchronous weighted frontiers over the
//! walk trie.
//!
//! ## Why a third batching tier
//!
//! ProbeSim's cost is dominated by PROBE traversals. The repo implements
//! three tiers of probe batching:
//!
//! 1. **per walk** (Algorithm 1) — every prefix of every walk runs its
//!    own probe;
//! 2. **per distinct prefix** (Algorithm 3, [`crate::trie::WalkTrie`]) —
//!    walks sharing a prefix are probed once, scaled by the prefix
//!    weight;
//! 3. **fused frontiers** (this module) — *all* of a query's probes run
//!    as one level-synchronous sweep over the trie, so probe work is
//!    shared even across *different* prefixes.
//!
//! Tier 2 still re-expands shared graph regions: a probe for the prefix
//! ending at trie node `t` walks the trie positions `t → parent(t) → … →
//! root`, and every probe passing through a position applies the *same*
//! linear expansion operator (same avoid vertex — the position's parent —
//! and the same remaining avoid chain). The fused engine exploits that
//! linearity: it keeps one **weighted arrival frontier per trie
//! position** (the merged mass of every probe that has propagated down to
//! it) and, sweeping the trie's levels deepest-first, merges all sibling
//! frontiers and expands each **distinct graph node once per (node,
//! parent position)** — instead of once per contributing prefix. At the
//! final level every probe's mass converges on the root, so the whole
//! query performs exactly one expansion pass per trie position and emits
//! once. [`QueryStats::frontier_merges`](crate::QueryStats::frontier_merges)
//! counts the deduplicated contributions (expansions tier 2 would have
//! repeated) and
//! [`QueryStats::levels_expanded`](crate::QueryStats::levels_expanded)
//! the sweeps.
//!
//! ## Strategy semantics on the fused path
//!
//! * **Deterministic** — bit-equivalent math to tier 2: the expansion is
//!   linear, so expanding a weight-merged frontier equals summing the
//!   per-prefix expansions (identical up to floating-point association;
//!   the equivalence is property-tested to 1e-9).
//! * **Randomized** — each candidate node still draws one uniform
//!   in-edge per level, but an accepted candidate inherits the sampled
//!   source's *merged weight* instead of a unit flag (the private
//!   `probe::expand_level_randomized` emission site is shared between
//!   both paths). The draw is therefore weight-proportional and the estimator
//!   stays unbiased level by level; what changes is the variance
//!   structure (tier 2 runs `w` independent probes per weight-`w`
//!   prefix). Unbiasedness is covered by a mean-over-seeds test against
//!   exact SimRank.
//! * **Hybrid** — the switch condition is evaluated per (level, parent
//!   group): a group whose frontier out-degree sum exceeds `c0·w·n`
//!   (with `w` = walks represented by the group) expands that one level
//!   randomized, others stay deterministic. Unlike tier 2's one-way
//!   switch, a fused group can return to deterministic expansion at a
//!   shallower level — both directions are unbiased.
//!
//! ## Pruning
//!
//! Fused frontiers carry weights (`Σ w_t/nr · score_t`), so pruning rule
//! 2 compares against a weight-scaled threshold `εp · W` with `W` the
//! group's walk share — the same condition as the legacy unweighted
//! `score · (√c)^r > εp` when a prefix is unshared, and an aggregate
//! analogue of it when mass is merged. Decisions can therefore differ
//! from tier 2 on shared prefixes (the error guarantee is preserved —
//! each dropped entry forfeits at most `εp·W ≤ εp` of any final score,
//! the same per-level loss bound the legacy path has); exact-equivalence
//! tests run with pruning disabled.

use probesim_graph::GraphView;
use rand::Rng;

use crate::accum::ScoreSink;
use crate::budget::BudgetExceeded;
use crate::config::ProbeStrategy;
use crate::probe::{self, ProbeParams};
use crate::result::QueryStats;
use crate::trie::WalkTrie;
use crate::workspace::ProbeWorkspace;

/// The weight-proportional draw budget of a randomized group expansion:
/// one independent in-edge trial per *alive walk equivalent* of the
/// merged frontier — `⌈nr · Σ_v H(v)⌉`, capped by the group's walk count.
///
/// The legacy path spends one trial per probe still alive at this
/// position; `nr · mass` is exactly that count in expectation (mass is
/// the merged per-walk survival probability), so the fused budget decays
/// with depth the way legacy probes die off instead of charging the full
/// group walk count to every candidate. The budget depends only on the
/// pre-expansion frontier, so the per-candidate averaged estimator stays
/// unbiased for any positive value.
#[inline]
fn draw_budget(group_walks: u64, frontier_mass: f64, nr: usize) -> u32 {
    let alive = (frontier_mass * nr as f64).ceil() as u64;
    alive.clamp(1, group_walks.clamp(1, u32::MAX as u64)) as u32
}

/// Runs every probe of a batched single-source query as one fused
/// level-synchronous sweep over `trie`, adding each node's accumulated
/// score (already scaled by `1/nr`) into `acc`.
///
/// Equivalent in expectation to probing each trie prefix separately with
/// weight `w/nr` (see the module docs for the per-strategy guarantees);
/// the work is bounded by distinct touched `(node, trie position)` pairs
/// instead of touched nodes *per prefix*.
///
/// Cooperative cancellation: `ws.budget` is checked before every group
/// expansion; an exceeded budget aborts between groups with
/// [`BudgetExceeded`], restoring the arena's BFS scratch buffers so the
/// workspace stays pooled and reusable after the abort.
// The argument list mirrors the paper's probe-loop state; bundling it
// into a struct would obscure which pieces each phase mutates.
#[allow(clippy::too_many_arguments)]
pub fn run_fused<G: GraphView + Sync, A: ScoreSink + ?Sized, R: Rng + ?Sized>(
    graph: &G,
    trie: &WalkTrie,
    nr: usize,
    params: &ProbeParams,
    strategy: ProbeStrategy,
    c0: f64,
    ws: &mut ProbeWorkspace,
    acc: &mut A,
    stats: &mut QueryStats,
    rng: &mut R,
) -> Result<(), BudgetExceeded> {
    if trie.is_empty() {
        return Ok(());
    }
    // Take the BFS scratch buffers out of the arena so the level slices
    // can be borrowed while the arena stores new spans.
    let mut order_nodes = std::mem::take(&mut ws.frontier.order_nodes);
    let mut order_parents = std::mem::take(&mut ws.frontier.order_parents);
    let mut level_starts = std::mem::take(&mut ws.frontier.level_starts);
    trie.bfs_levels(&mut order_nodes, &mut order_parents, &mut level_starts);
    ws.frontier.begin_query(trie.len());
    stats.trie_prefixes += order_nodes.len();

    let result = fused_sweep(
        graph,
        trie,
        nr,
        params,
        strategy,
        c0,
        ws,
        acc,
        stats,
        rng,
        &order_nodes,
        &order_parents,
        &level_starts,
    );
    // Hand the scratch buffers back on every exit path (success or
    // budget abort) so the pooled-capacity contract survives cancellation.
    ws.frontier.order_nodes = order_nodes;
    ws.frontier.order_parents = order_parents;
    ws.frontier.level_starts = level_starts;
    result
}

/// The sweep body of [`run_fused`], split out so the taken BFS buffers
/// are restored on the abort path too.
// Same flat parameter list as run_fused, for the same reason.
#[allow(clippy::too_many_arguments)]
fn fused_sweep<G: GraphView + Sync, A: ScoreSink + ?Sized, R: Rng + ?Sized>(
    graph: &G,
    trie: &WalkTrie,
    nr: usize,
    params: &ProbeParams,
    strategy: ProbeStrategy,
    c0: f64,
    ws: &mut ProbeWorkspace,
    acc: &mut A,
    stats: &mut QueryStats,
    rng: &mut R,
    order_nodes: &[u32],
    order_parents: &[u32],
    level_starts: &[usize],
) -> Result<(), BudgetExceeded> {
    let inv_nr = 1.0 / nr as f64;
    let n = graph.num_nodes();
    let depth_count = level_starts.len() - 1;
    // Sweep deepest-first: consuming level `depth` produces the arrival
    // frontiers of level `depth - 1`, and the `depth == 1` sweep emits
    // into the accumulator (the mass has reached the root).
    for depth in (1..=depth_count).rev() {
        stats.levels_expanded += 1;
        let level_range = level_starts[depth - 1]..level_starts[depth];
        let level_nodes = &order_nodes[level_range.clone()];
        let level_parents = &order_parents[level_range];
        // Pruning rule 2: mass at depth `r` has `r` expansions left, so an
        // entry can grow by at most (√c)^r before emission.
        let bound = params.sqrt_c.powi(depth as i32);
        let mut group_start = 0;
        while group_start < level_nodes.len() {
            // Siblings are consecutive within a BFS level; one group =
            // all children of `parent`.
            let parent = level_parents[group_start];
            let mut group_end = group_start + 1;
            while group_end < level_nodes.len() && level_parents[group_end] == parent {
                group_end += 1;
            }
            let group = &level_nodes[group_start..group_end];
            group_start = group_end;

            let ProbeWorkspace {
                current,
                next,
                frontier,
                budget,
                sweep,
                remap,
            } = ws;
            budget.check(stats)?;
            let sweep = *sweep;
            let scan = remap.as_deref().map(|r| r.internal_order());
            // Merge phase: every sibling's arrival frontier plus each
            // sibling's own probe start (H_0 = {vertex}, weight w/nr)
            // lands in one deduplicated weighted frontier.
            current.clear();
            let mut contributions = 0usize;
            let mut group_walks = 0u64;
            for &child in group {
                let (span_nodes, span_weights) = frontier.span(child);
                for (&v, &w) in span_nodes.iter().zip(span_weights) {
                    contributions += 1;
                    current.add(v, w);
                }
                contributions += 1;
                current.add(trie.vertex(child), trie.weight(child) as f64 * inv_nr);
                group_walks += trie.weight(child) as u64;
            }
            stats.frontier_merges += contributions - current.len();

            // The legacy randomized probe never prunes; mirror that.
            if params.epsilon_p > 0.0 && strategy != ProbeStrategy::Randomized {
                let tau = params.epsilon_p * (group_walks as f64 * inv_nr);
                current.retain(|_, s| s * bound > tau);
            }
            if current.is_empty() {
                continue;
            }

            // Every probe stepping from this group toward the root must
            // avoid the parent's vertex at this level (Definition 4).
            let avoid = trie.vertex(parent);
            stats.probes += 1;
            next.clear();
            // Parallel dispatch keys on frontier *length* only (never
            // thread count), so the sequential/parallel boundary is
            // machine-independent and the deterministic replay merge
            // reproduces the sequential bits exactly.
            let go_parallel = sweep.parallel && current.len() >= probe::MIN_PARALLEL_FRONTIER;
            match strategy {
                ProbeStrategy::Deterministic => {
                    if go_parallel {
                        probe::expand_level_deterministic_parallel(
                            graph,
                            params.sqrt_c,
                            avoid,
                            current,
                            next,
                            sweep.threads,
                            stats,
                        );
                    } else {
                        probe::expand_level_deterministic(
                            graph,
                            params.sqrt_c,
                            avoid,
                            current,
                            next,
                            stats,
                        );
                    }
                }
                ProbeStrategy::Randomized => {
                    stats.randomized_probes += 1;
                    let mass: f64 = current.nodes().iter().map(|&v| current.get(v)).sum();
                    let draws = draw_budget(group_walks, mass, nr);
                    if go_parallel {
                        probe::expand_level_randomized_parallel(
                            graph,
                            params.sqrt_c,
                            avoid,
                            current,
                            next,
                            scan,
                            draws,
                            sweep.threads,
                            stats,
                            rng,
                        );
                    } else {
                        probe::expand_level_randomized(
                            graph,
                            params.sqrt_c,
                            avoid,
                            current,
                            next,
                            scan,
                            draws,
                            stats,
                            rng,
                        );
                    }
                }
                ProbeStrategy::Hybrid => {
                    let out_sum = probe::frontier_out_degree_sum(graph, current);
                    let threshold = (c0 * group_walks as f64 * n as f64).max(1.0);
                    if out_sum as f64 > threshold {
                        stats.hybrid_switches += 1;
                        stats.randomized_probes += 1;
                        let mass: f64 = current.nodes().iter().map(|&v| current.get(v)).sum();
                        let draws = draw_budget(group_walks, mass, nr);
                        if go_parallel {
                            probe::expand_level_randomized_parallel(
                                graph,
                                params.sqrt_c,
                                avoid,
                                current,
                                next,
                                scan,
                                draws,
                                sweep.threads,
                                stats,
                                rng,
                            );
                        } else {
                            probe::expand_level_randomized(
                                graph,
                                params.sqrt_c,
                                avoid,
                                current,
                                next,
                                scan,
                                draws,
                                stats,
                                rng,
                            );
                        }
                    } else if go_parallel {
                        probe::expand_level_deterministic_parallel(
                            graph,
                            params.sqrt_c,
                            avoid,
                            current,
                            next,
                            sweep.threads,
                            stats,
                        );
                    } else {
                        probe::expand_level_deterministic(
                            graph,
                            params.sqrt_c,
                            avoid,
                            current,
                            next,
                            stats,
                        );
                    }
                }
            }
            if depth == 1 {
                // `parent` is the root: the frontier is fully expanded;
                // emit. (The root itself is not a probeable prefix.)
                for &v in next.nodes() {
                    let score = next.get(v);
                    if score > 0.0 {
                        acc.add(v, score);
                    }
                }
            } else {
                frontier.store(parent, next);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_graph::toy::{toy_graph, A, B, C};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fuse_det(trie: &WalkTrie, nr: usize, epsilon_p: f64) -> Vec<f64> {
        let g = toy_graph();
        let params = ProbeParams {
            sqrt_c: 0.5,
            epsilon_p,
        };
        let mut ws = ProbeWorkspace::new(8);
        let mut acc = vec![0.0; 8];
        let mut stats = QueryStats::default();
        let mut rng = StdRng::seed_from_u64(1);
        run_fused(
            &g,
            trie,
            nr,
            &params,
            ProbeStrategy::Deterministic,
            0.5,
            &mut ws,
            &mut acc,
            &mut stats,
            &mut rng,
        )
        .unwrap();
        acc
    }

    fn legacy_det(trie: &WalkTrie, nr: usize, epsilon_p: f64) -> Vec<f64> {
        let g = toy_graph();
        let params = ProbeParams {
            sqrt_c: 0.5,
            epsilon_p,
        };
        let mut ws = ProbeWorkspace::new(8);
        let mut acc = vec![0.0; 8];
        let mut stats = QueryStats::default();
        trie.for_each_prefix(|path, w| {
            probe::deterministic(
                &g,
                path,
                &params,
                w as f64 / nr as f64,
                &mut ws,
                &mut acc,
                &mut stats,
            )
            .unwrap();
        });
        acc
    }

    #[test]
    fn fused_matches_per_prefix_on_shared_trie() {
        // The paper's Figure 3 trie: three walks, two sharing a prefix.
        let mut trie = WalkTrie::new(A);
        trie.insert(&[A, B, 2]);
        trie.insert(&[A, 2, A]);
        trie.insert(&[A, B, A]);
        let fused = fuse_det(&trie, 3, 0.0);
        let legacy = legacy_det(&trie, 3, 0.0);
        for v in 0..8 {
            assert!(
                (fused[v] - legacy[v]).abs() < 1e-12,
                "node {v}: fused {} vs legacy {}",
                fused[v],
                legacy[v]
            );
        }
        assert!(fused.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn fused_counts_merges_and_levels() {
        let g = toy_graph();
        let mut trie = WalkTrie::new(A);
        // Two branches that overlap at the root group: expanding (A,B,A)
        // past position B yields {c}, expanding (A,C,A) past position C
        // yields {b} — each collides with the other branch's own probe
        // start (vertex b resp. c), so the root-level merge dedups two
        // contributions the per-prefix path would have expanded twice.
        for _ in 0..50 {
            trie.insert(&[A, B, A]);
            trie.insert(&[A, C, A]);
        }
        let params = ProbeParams {
            sqrt_c: 0.5,
            epsilon_p: 0.0,
        };
        let mut ws = ProbeWorkspace::new(8);
        let mut acc = vec![0.0; 8];
        let mut stats = QueryStats::default();
        let mut rng = StdRng::seed_from_u64(1);
        run_fused(
            &g,
            &trie,
            100,
            &params,
            ProbeStrategy::Deterministic,
            0.5,
            &mut ws,
            &mut acc,
            &mut stats,
            &mut rng,
        )
        .unwrap();
        assert_eq!(stats.levels_expanded, 2);
        assert_eq!(stats.trie_prefixes, 4);
        assert_eq!(
            stats.probes, 3,
            "two depth-2 parent groups, one fused root group"
        );
        assert!(stats.edges_expanded > 0);
        assert_eq!(stats.frontier_merges, 2, "b and c each merged once");
    }

    #[test]
    fn empty_trie_is_a_no_op() {
        let trie = WalkTrie::new(A);
        let acc = fuse_det(&trie, 1, 0.0);
        assert!(acc.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn fused_respects_the_avoid_rule() {
        // Mass converging on the root must never be emitted onto the
        // query node's avoid chain: probe (A,B) avoids A at its only
        // expansion, so A's score stays zero.
        let mut trie = WalkTrie::new(A);
        for _ in 0..10 {
            trie.insert(&[A, B]);
        }
        let acc = fuse_det(&trie, 10, 0.0);
        assert_eq!(acc[A as usize], 0.0);
        assert!(acc[3] > 0.0, "d gets first-meeting mass via b");
    }
}
