//! The PROBE primitives.
//!
//! Given a partial √c-walk `(u1, …, ui)` (a *reverse path*: each `u_{j+1}`
//! is an in-neighbor of `u_j`), a probe computes, for every node `v ≠ u1`,
//! the **first-meeting probability** `P(v, (u1..ui))`: the probability that
//! a fresh √c-walk from `v` is at `ui` after `i−1` steps while avoiding
//! `u_{i-1}, …, u_1` at the corresponding earlier steps (Definition 4).
//!
//! * [`deterministic`] — Algorithm 2: exact dynamic programming over
//!   forward (out-edge) frontiers, O(m) per level, with pruning rule 2.
//! * [`randomized`] — Algorithm 4: each level samples one in-edge per
//!   candidate node and keeps it with probability √c, giving a Bernoulli
//!   estimate whose expectation equals the deterministic score (Lemma 6).
//!   O(n) per level in the worst case.
//! * [`hybrid`] — Section 4.4: deterministic levels until the frontier's
//!   out-degree sum exceeds `c0·w·n`, then `w` independent randomized
//!   continuations seeded from the exact scores.
//!
//! All variants *emit* `weight · Score(v)` into a dense accumulator instead
//! of returning hash sets; the accumulator lives for the whole query.

use probesim_graph::{GraphView, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::accum::ScoreSink;
use crate::budget::BudgetExceeded;
use crate::result::QueryStats;
use crate::workspace::{LevelBuf, ProbeWorkspace};

/// Minimum frontier size before a parallel expansion pays for its
/// fan-out; smaller frontiers run inline. A length threshold (never a
/// thread count) keeps the parallel/sequential decision independent of
/// the machine.
pub(crate) const MIN_PARALLEL_FRONTIER: usize = 64;

/// SplitMix64-style finalizer deriving one RNG seed per (expansion,
/// chunk) pair: `base` is a single `u64` drawn from the query RNG at the
/// start of the expansion (so the stream position depends only on the
/// expansion sequence, never the thread count), mixed with the chunk
/// index.
#[inline]
fn chunk_seed(base: u64, chunk: u64) -> u64 {
    let mut z = base ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shared probe parameters.
#[derive(Debug, Clone, Copy)]
pub struct ProbeParams {
    /// `√c`.
    pub sqrt_c: f64,
    /// Pruning rule 2 threshold `εp`; `0.0` disables pruning.
    pub epsilon_p: f64,
}

/// Runs the deterministic PROBE (Algorithm 2) on the partial walk `path` =
/// `(u1, …, ui)` and adds `weight · Score(v)` to `acc[v]` for every node in
/// the final frontier `H_{i-1}`.
///
/// `path.len()` must be ≥ 2 (a probe of a length-1 walk has no meeting
/// step).
///
/// Cooperative cancellation: `ws.budget` is checked before every level
/// expansion; an exceeded budget aborts between levels with
/// [`BudgetExceeded`] (never mid-expansion — partial level output stays
/// confined to the workspace, which the session resets on abort).
pub fn deterministic<G: GraphView, A: ScoreSink + ?Sized>(
    graph: &G,
    path: &[NodeId],
    params: &ProbeParams,
    weight: f64,
    ws: &mut ProbeWorkspace,
    acc: &mut A,
    stats: &mut QueryStats,
) -> Result<(), BudgetExceeded> {
    let i = path.len();
    debug_assert!(i >= 2, "probe needs a path of at least 2 nodes");
    stats.probes += 1;
    ws.reset();
    // H_0 = {(u_i, 1)}.
    ws.current.add(path[i - 1], 1.0);
    for j in 0..(i - 1) {
        ws.budget.check(stats)?;
        // Remaining levels after this expansion: (i-1) - (j+1); the score
        // of any node in H_j can grow by at most √c per remaining level, so
        // entries below εp / (√c)^{(i-1)-j} can never contribute more than
        // εp (pruning rule 2, with the paper's exponent i−j−1).
        if params.epsilon_p > 0.0 {
            let bound = params.sqrt_c.powi((i - 1 - j) as i32);
            ws.current.retain(|_, s| s * bound > params.epsilon_p);
        }
        if ws.current.is_empty() {
            return Ok(());
        }
        // The walk from v must avoid u_{i-j-1} at this position
        // (1-based u_{i-j-1} = 0-based path[i-j-2]).
        let avoid = path[i - j - 2];
        expand_level_deterministic(
            graph,
            params.sqrt_c,
            avoid,
            &ws.current,
            &mut ws.next,
            stats,
        );
        ws.advance();
    }
    for &v in ws.current.nodes() {
        acc.add(v, weight * ws.current.get(v));
    }
    Ok(())
}

/// One deterministic frontier expansion: `H_{j+1}[v] += √c/|I(v)| · H_j[x]`
/// for every out-edge `x → v` with `v ≠ avoid`.
///
/// This is the shared deterministic emission site: the per-prefix probes
/// drive it with a single probe's frontier, the fused engine
/// ([`crate::frontier`]) with a weight-merged multi-probe frontier —
/// linearity of the recurrence makes the two uses interchangeable.
#[inline]
pub(crate) fn expand_level_deterministic<G: GraphView>(
    graph: &G,
    sqrt_c: f64,
    avoid: NodeId,
    current: &LevelBuf,
    next: &mut LevelBuf,
    stats: &mut QueryStats,
) {
    for &x in current.nodes() {
        let score_x = current.get(x);
        if score_x <= 0.0 {
            continue;
        }
        for &v in graph.out_neighbors(x) {
            stats.edges_expanded += 1;
            if v == avoid {
                continue;
            }
            let contribution = sqrt_c / graph.in_degree(v) as f64 * score_x;
            next.add(v, contribution);
        }
    }
}

/// The parallel twin of [`expand_level_deterministic`], used by the
/// fused sweep when [`crate::workspace::SweepPolicy`] arms it.
///
/// The frontier's node list is cut into fixed-width chunks
/// ([`crate::par::chunked_ranges`]); each worker records its raw
/// `(target, delta)` contributions **in emission order** into private
/// struct-of-arrays shards, and the merge then replays every shard in
/// chunk order through `next.add`. Because chunk boundaries and
/// per-chunk emission order are exactly the sequential iteration order,
/// the replayed add sequence *is* the sequential add sequence — same
/// floating-point association, bit-identical `next`, identical stats —
/// at any thread count, including 1.
pub(crate) fn expand_level_deterministic_parallel<G: GraphView + Sync>(
    graph: &G,
    sqrt_c: f64,
    avoid: NodeId,
    current: &LevelBuf,
    next: &mut LevelBuf,
    threads: usize,
    stats: &mut QueryStats,
) {
    let nodes = current.nodes();
    let shards = crate::par::chunked_ranges(nodes.len(), threads, |_, range| {
        let mut shard_nodes: Vec<NodeId> = Vec::new();
        let mut shard_deltas: Vec<f64> = Vec::new();
        let mut edges = 0usize;
        for &x in &nodes[range] {
            let score_x = current.get(x);
            if score_x <= 0.0 {
                continue;
            }
            for &v in graph.out_neighbors(x) {
                edges += 1;
                if v == avoid {
                    continue;
                }
                shard_nodes.push(v);
                shard_deltas.push(sqrt_c / graph.in_degree(v) as f64 * score_x);
            }
        }
        (shard_nodes, shard_deltas, edges)
    });
    for (shard_nodes, shard_deltas, edges) in shards {
        stats.edges_expanded += edges;
        for (v, delta) in shard_nodes.into_iter().zip(shard_deltas) {
            next.add(v, delta);
        }
    }
}

/// Out-degree sum of a frontier — the quantity the hybrid switch
/// condition compares against `c0·w·n` (shared by the per-prefix hybrid
/// and the fused engine).
#[inline]
pub(crate) fn frontier_out_degree_sum<G: GraphView>(graph: &G, frontier: &LevelBuf) -> usize {
    frontier.nodes().iter().map(|&x| graph.out_degree(x)).sum()
}

/// Runs the randomized PROBE (Algorithm 4) and adds `weight` to `acc[v]`
/// for every node selected into the final frontier.
///
/// Expectation over the sampling equals the deterministic scores (the
/// paper's Lemma 6 / Theorem 3), so the caller may mix deterministic and
/// randomized probes freely.
// The argument list mirrors the paper's probe-loop state; bundling it
// into a struct would obscure which pieces each phase mutates.
#[allow(clippy::too_many_arguments)]
pub fn randomized<G: GraphView, A: ScoreSink + ?Sized, R: Rng + ?Sized>(
    graph: &G,
    path: &[NodeId],
    params: &ProbeParams,
    weight: f64,
    ws: &mut ProbeWorkspace,
    acc: &mut A,
    stats: &mut QueryStats,
    rng: &mut R,
) -> Result<(), BudgetExceeded> {
    let i = path.len();
    debug_assert!(i >= 2);
    stats.probes += 1;
    stats.randomized_probes += 1;
    ws.reset();
    ws.current.add(path[i - 1], 1.0);
    for j in 0..(i - 1) {
        ws.budget.check(stats)?;
        if ws.current.is_empty() {
            return Ok(());
        }
        let avoid = path[i - j - 2];
        expand_level_randomized(
            graph,
            params.sqrt_c,
            avoid,
            &ws.current,
            &mut ws.next,
            ws.remap.as_deref().map(|r| r.internal_order()),
            1,
            stats,
            rng,
        );
        ws.advance();
    }
    for &v in ws.current.nodes() {
        acc.add(v, weight);
    }
    Ok(())
}

/// One randomized frontier expansion (the loop body of Algorithm 4).
///
/// Builds the candidate set `U` as the union of out-neighbors of `H_j` when
/// that is cheaper than `n`, otherwise scans all nodes; then, for each
/// candidate `x ≠ avoid`, samples one uniform in-edge `(v, x)` and keeps `x`
/// with probability `√c` when `v ∈ H_j`. Candidates reached from several
/// frontier nodes are processed once (the membership stamp dedups), keeping
/// the per-node selection probability exactly `√c·|I(x) ∩ H_j|/|I(x)|`…
/// with one subtlety: sampling an in-edge uniformly already weights by
/// `1/|I(x)|`, so the deduped single trial has the correct marginal.
///
/// This is the shared randomized emission site, generalized along two
/// axes for the fused engine ([`crate::frontier`]) while reproducing
/// Algorithm 4 verbatim for the per-prefix paths:
///
/// * an accepted draw inherits the *score of the sampled in-neighbor* —
///   exactly 1.0 on the per-prefix paths (the legacy unit flag), a
///   merged weight on the fused path;
/// * each candidate performs `draws` independent in-edge trials and
///   keeps the average — the **weight-proportional budget**. The
///   per-prefix paths pass `draws = 1` (each of their probes is its own
///   trial); the fused path passes the merged frontier's alive-walk
///   equivalent (`⌈nr·mass⌉`, capped at the group walk count — see
///   `frontier::draw_budget`), matching the trial count the legacy path
///   spends as separate unit probes, so the estimate concentrates
///   identically as `nr` grows.
///
/// Either way `E[H'(x)] = √c/|I(x)| · Σ_{v∈H} H(v)`, so the estimator
/// is unbiased level by level.
///
/// `scan` is the node order for the dense `U = V` branch: `None` scans
/// internal ids `0..n`; a relabeled graph passes its internal ids in
/// external-ascending order ([`probesim_graph::NodeRemap`]), so the
/// candidate visit sequence — hence the RNG consumption — is identical
/// to the unrelabeled graph's.
// Same flat probe-loop state as randomized, for the same reason.
#[allow(clippy::too_many_arguments)]
pub(crate) fn expand_level_randomized<G: GraphView, R: Rng + ?Sized>(
    graph: &G,
    sqrt_c: f64,
    avoid: NodeId,
    current: &LevelBuf,
    next: &mut LevelBuf,
    scan: Option<&[NodeId]>,
    draws: u32,
    stats: &mut QueryStats,
    rng: &mut R,
) {
    let n = graph.num_nodes();
    let out_sum = frontier_out_degree_sum(graph, current);
    let draws = draws.max(1);
    let mut try_candidate = |x: NodeId, rng: &mut R, stats: &mut QueryStats| {
        if x == avoid || next.contains(x) {
            return;
        }
        let in_nbrs = graph.in_neighbors(x);
        if in_nbrs.is_empty() {
            // Inspected but nothing to draw: charge the single candidate
            // visit, not the full draw budget that never runs.
            stats.nodes_sampled += 1;
            return;
        }
        if draws > 1 && draws as usize >= in_nbrs.len() {
            // Rao–Blackwell shortcut (fused path only; legacy's
            // `draws = 1` keeps Algorithm 4 verbatim): once the budget
            // covers the candidate's in-degree, scanning the in-edges and
            // taking the exact conditional expectation is cheaper than
            // the draws it replaces and has zero variance — the estimator
            // it substitutes for is its own conditional mean, so
            // unbiasedness is untouched.
            stats.nodes_sampled += 1;
            stats.edges_expanded += in_nbrs.len();
            let mass: f64 = in_nbrs.iter().map(|&v| current.get(v)).sum();
            if mass > 0.0 {
                next.add(x, sqrt_c * mass / in_nbrs.len() as f64);
            } else {
                next.set(x, 0.0);
            }
            return;
        }
        stats.nodes_sampled += draws as usize;
        let mut kept = 0.0f64;
        for _ in 0..draws {
            let v = in_nbrs[rng.gen_range(0..in_nbrs.len())];
            let score_v = current.get(v);
            if score_v > 0.0 && rng.gen::<f64>() < sqrt_c {
                kept += score_v;
            }
        }
        if kept > 0.0 {
            next.add(x, kept / draws as f64);
        } else {
            // Mark as processed with a zero score so duplicate candidates
            // coming from other frontier nodes are not re-sampled.
            next.set(x, 0.0);
        }
    };
    if out_sum <= n {
        for &x in current.nodes() {
            if current.get(x) <= 0.0 {
                continue;
            }
            for &cand in graph.out_neighbors(x) {
                try_candidate(cand, rng, stats);
            }
        }
    } else {
        match scan {
            Some(order) => {
                for &cand in order {
                    try_candidate(cand, rng, stats);
                }
            }
            None => {
                for cand in graph.nodes() {
                    try_candidate(cand, rng, stats);
                }
            }
        }
    }
    // Compact away the zero-score "processed" markers so the next level
    // only iterates real members.
    next.retain(|_, s| s > 0.0);
}

/// The parallel twin of [`expand_level_randomized`], used by the fused
/// sweep when [`crate::workspace::SweepPolicy`] arms it.
///
/// Candidates are enumerated **sequentially** (same order and dedup
/// marking as the sequential path, so no candidate is double-sampled),
/// then cut into fixed-width chunks. One `u64` is drawn from the query
/// RNG per expansion; each chunk seeds a private [`StdRng`] from
/// ([`chunk_seed`]) that base and the chunk index, so the sampled
/// output depends on (seed, expansion, chunk) — never on the thread
/// count. Per-candidate trial logic mirrors the sequential path exactly
/// (including the Rao–Blackwell shortcut, which consumes no RNG);
/// positive results merge in candidate order.
///
/// One accounted difference from the sequential path: candidates with
/// no in-neighbors are marked processed here (the sequential path
/// re-inspects them per duplicate), so `nodes_sampled` can be lower —
/// this mode carries its own workload baseline.
// Same flat probe-loop parameter list as expand_level_randomized, plus
// the thread budget; a struct would obscure which pieces each phase
// mutates.
#[allow(clippy::too_many_arguments)]
pub(crate) fn expand_level_randomized_parallel<G: GraphView + Sync, R: Rng + ?Sized>(
    graph: &G,
    sqrt_c: f64,
    avoid: NodeId,
    current: &LevelBuf,
    next: &mut LevelBuf,
    scan: Option<&[NodeId]>,
    draws: u32,
    threads: usize,
    stats: &mut QueryStats,
    rng: &mut R,
) {
    let n = graph.num_nodes();
    let out_sum = frontier_out_degree_sum(graph, current);
    let draws = draws.max(1);
    let mut candidates: Vec<NodeId> = Vec::new();
    {
        let mut push = |x: NodeId| {
            if x == avoid || next.contains(x) {
                return;
            }
            next.set(x, 0.0);
            candidates.push(x);
        };
        if out_sum <= n {
            for &x in current.nodes() {
                if current.get(x) <= 0.0 {
                    continue;
                }
                for &cand in graph.out_neighbors(x) {
                    push(cand);
                }
            }
        } else {
            match scan {
                Some(order) => {
                    for &cand in order {
                        push(cand);
                    }
                }
                None => {
                    for cand in graph.nodes() {
                        push(cand);
                    }
                }
            }
        }
    }
    if candidates.is_empty() {
        next.retain(|_, s| s > 0.0);
        return;
    }
    let base: u64 = rng.gen();
    let shards = crate::par::chunked_ranges(candidates.len(), threads, |chunk, range| {
        let mut chunk_rng = StdRng::seed_from_u64(chunk_seed(base, chunk as u64));
        let mut values: Vec<f64> = Vec::with_capacity(range.len());
        let mut sampled = 0usize;
        let mut edges = 0usize;
        for &x in &candidates[range] {
            let in_nbrs = graph.in_neighbors(x);
            if in_nbrs.is_empty() {
                sampled += 1;
                values.push(0.0);
                continue;
            }
            if draws > 1 && draws as usize >= in_nbrs.len() {
                // Rao–Blackwell shortcut, RNG-free — see the sequential
                // path for why this keeps the estimator unbiased.
                sampled += 1;
                edges += in_nbrs.len();
                let mass: f64 = in_nbrs.iter().map(|&v| current.get(v)).sum();
                values.push(if mass > 0.0 {
                    sqrt_c * mass / in_nbrs.len() as f64
                } else {
                    0.0
                });
                continue;
            }
            sampled += draws as usize;
            let mut kept = 0.0f64;
            for _ in 0..draws {
                let v = in_nbrs[chunk_rng.gen_range(0..in_nbrs.len())];
                let score_v = current.get(v);
                if score_v > 0.0 && chunk_rng.gen::<f64>() < sqrt_c {
                    kept += score_v;
                }
            }
            values.push(if kept > 0.0 { kept / draws as f64 } else { 0.0 });
        }
        (values, sampled, edges)
    });
    let mut i = 0usize;
    for (values, sampled, edges) in shards {
        stats.nodes_sampled += sampled;
        stats.edges_expanded += edges;
        for value in values {
            if value > 0.0 {
                next.add(candidates[i], value);
            }
            i += 1;
        }
    }
    next.retain(|_, s| s > 0.0);
}

/// Runs the hybrid PROBE (Section 4.4) for a batched prefix of weight
/// `walk_count` (the number of √c-walks sharing this prefix).
///
/// Levels are expanded deterministically while the frontier out-degree sum
/// stays ≤ `c0 · walk_count · n`. If the threshold trips at level `j`, the
/// exact scores of `H_j` seed `walk_count` independent randomized
/// continuations, each contributing `weight / walk_count`.
// Same flat probe-loop state as randomized, for the same reason.
#[allow(clippy::too_many_arguments)]
pub fn hybrid<G: GraphView, A: ScoreSink + ?Sized, R: Rng + ?Sized>(
    graph: &G,
    path: &[NodeId],
    params: &ProbeParams,
    weight: f64,
    walk_count: usize,
    c0: f64,
    ws: &mut ProbeWorkspace,
    acc: &mut A,
    stats: &mut QueryStats,
    rng: &mut R,
) -> Result<(), BudgetExceeded> {
    let i = path.len();
    debug_assert!(i >= 2);
    debug_assert!(walk_count >= 1);
    stats.probes += 1;
    ws.reset();
    ws.current.add(path[i - 1], 1.0);
    let n = graph.num_nodes();
    let switch_threshold = (c0 * walk_count as f64 * n as f64).max(1.0);
    for j in 0..(i - 1) {
        ws.budget.check(stats)?;
        if params.epsilon_p > 0.0 {
            let bound = params.sqrt_c.powi((i - 1 - j) as i32);
            ws.current.retain(|_, s| s * bound > params.epsilon_p);
        }
        if ws.current.is_empty() {
            return Ok(());
        }
        let out_sum = frontier_out_degree_sum(graph, &ws.current);
        if out_sum as f64 > switch_threshold {
            stats.hybrid_switches += 1;
            return randomized_continuations(
                graph, path, params, weight, walk_count, j, ws, acc, stats, rng,
            );
        }
        let avoid = path[i - j - 2];
        expand_level_deterministic(
            graph,
            params.sqrt_c,
            avoid,
            &ws.current,
            &mut ws.next,
            stats,
        );
        ws.advance();
    }
    for &v in ws.current.nodes() {
        acc.add(v, weight * ws.current.get(v));
    }
    Ok(())
}

/// Finishes a hybrid probe: `walk_count` independent randomized runs of the
/// remaining levels, each seeded by Bernoulli-sampling the exact frontier
/// scores of `H_j` (marginal inclusion probability = exact score, so
/// linearity keeps the estimator unbiased).
// Same flat probe-loop state as randomized, for the same reason.
#[allow(clippy::too_many_arguments)]
fn randomized_continuations<G: GraphView, A: ScoreSink + ?Sized, R: Rng + ?Sized>(
    graph: &G,
    path: &[NodeId],
    params: &ProbeParams,
    weight: f64,
    walk_count: usize,
    start_level: usize,
    ws: &mut ProbeWorkspace,
    acc: &mut A,
    stats: &mut QueryStats,
    rng: &mut R,
) -> Result<(), BudgetExceeded> {
    let i = path.len();
    // Snapshot the exact frontier (scores ∈ [0, 1]).
    let seed_frontier: Vec<(NodeId, f64)> = ws
        .current
        .nodes()
        .iter()
        .map(|&v| (v, ws.current.get(v)))
        .filter(|&(_, s)| s > 0.0)
        .collect();
    let per_run_weight = weight / walk_count as f64;
    for _ in 0..walk_count {
        ws.budget.check(stats)?;
        stats.randomized_probes += 1;
        ws.reset();
        for &(v, s) in &seed_frontier {
            // Scores can exceed 1 only through floating-point noise.
            if rng.gen::<f64>() < s {
                ws.current.add(v, 1.0);
            }
        }
        let mut alive = !ws.current.is_empty();
        if alive {
            for j in start_level..(i - 1) {
                ws.budget.check(stats)?;
                let avoid = path[i - j - 2];
                expand_level_randomized(
                    graph,
                    params.sqrt_c,
                    avoid,
                    &ws.current,
                    &mut ws.next,
                    ws.remap.as_deref().map(|r| r.internal_order()),
                    1,
                    stats,
                    rng,
                );
                ws.advance();
                if ws.current.is_empty() {
                    alive = false;
                    break;
                }
            }
        }
        if alive {
            for &v in ws.current.nodes() {
                acc.add(v, per_run_weight);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_graph::toy::{toy_graph, A, B, C, D, E, F, G, H};
    use probesim_graph::CsrGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_det(path: &[NodeId], epsilon_p: f64) -> Vec<f64> {
        let g = toy_graph();
        let params = ProbeParams {
            sqrt_c: 0.5,
            epsilon_p,
        };
        let mut ws = ProbeWorkspace::new(8);
        let mut acc = vec![0.0; 8];
        let mut stats = QueryStats::default();
        deterministic(&g, path, &params, 1.0, &mut ws, &mut acc, &mut stats).unwrap();
        acc
    }

    #[test]
    fn probe_ab_matches_paper_s2() {
        // Paper: probe of W(u,2) = (a,b) gives S2 = {(c,0.167),(d,0.5),(e,0.25)}.
        let acc = run_det(&[A, B], 0.0);
        assert!((acc[C as usize] - 1.0 / 6.0).abs() < 1e-12);
        assert!((acc[D as usize] - 0.5).abs() < 1e-12);
        assert!((acc[E as usize] - 0.25).abs() < 1e-12);
        assert_eq!(acc[A as usize], 0.0, "avoided node a must get no score");
        assert_eq!(acc[F as usize], 0.0);
    }

    #[test]
    fn probe_aba_matches_paper_s3() {
        // Paper: S3 = {(f,0.021),(g,0.028),(h,0.028)}.
        let acc = run_det(&[A, B, A], 0.0);
        assert!((acc[F as usize] - 0.5 / 3.0 * 0.5 / 4.0).abs() < 1e-12);
        assert!((acc[G as usize] - 0.5 / 3.0 * 0.5 / 3.0).abs() < 1e-12);
        assert!((acc[H as usize] - 0.5 / 3.0 * 0.5 / 3.0).abs() < 1e-12);
        let rounded: Vec<f64> = acc.iter().map(|s| (s * 1000.0).round() / 1000.0).collect();
        assert_eq!(rounded[F as usize], 0.021);
        assert_eq!(rounded[G as usize], 0.028);
        assert_eq!(rounded[H as usize], 0.028);
    }

    #[test]
    fn probe_abab_matches_paper_s4() {
        // Paper: S4 = {(b,0.011),(c,0.033),(e,0.038),(f,0.019)}. The paper
        // prints values rounded from already-rounded intermediates (e.g.
        // Score(b,3) = 0.042·0.5/2 → 0.0105 → "0.011"); we assert the exact
        // fractions instead: b = 1/96 ≈ 0.0104, c = 14/432 ≈ 0.0324,
        // e = 11/288 ≈ 0.0382, f = 11/576 ≈ 0.0191.
        let acc = run_det(&[A, B, A, B], 0.0);
        assert!((acc[B as usize] - 1.0 / 96.0).abs() < 1e-12);
        assert!((acc[C as usize] - 14.0 / 432.0).abs() < 1e-12);
        assert!((acc[E as usize] - 11.0 / 288.0).abs() < 1e-12);
        assert!((acc[F as usize] - 11.0 / 576.0).abs() < 1e-12);
        // Paper-precision agreement: every entry within 0.001 of the print.
        for (v, paper) in [(B, 0.011), (C, 0.033), (E, 0.038), (F, 0.019)] {
            assert!((acc[v as usize] - paper).abs() < 1.1e-3, "node {v}");
        }
        assert_eq!(acc[A as usize], 0.0);
        assert_eq!(acc[D as usize], 0.0);
        assert_eq!(acc[G as usize], 0.0);
        assert_eq!(acc[H as usize], 0.0);
    }

    #[test]
    fn pruning_rule2_kills_c_subtree_as_in_paper() {
        // Paper, Section 4.1: with εp = 0.05 on probe (a,b,a,b), the c
        // branch of H1 (score 0.167, two levels left: 0.167·0.25 ≤ 0.05)
        // is pruned. d (0.5·0.25 = 0.125 > 0.05) survives.
        let pruned = run_det(&[A, B, A, B], 0.05);
        let exact = run_det(&[A, B, A, B], 0.0);
        // Pruning only lowers scores (one-sided error), losing at most
        // (i−1)·εp per node (εp per pruned level; see config.rs on why the
        // paper's per-probe εp claim is slightly optimistic).
        for v in 0..8 {
            assert!(pruned[v] <= exact[v] + 1e-15);
            assert!(exact[v] - pruned[v] <= 3.0 * 0.05 + 1e-12, "node {v}");
        }
        // The c-subtree loss must actually show up somewhere.
        assert!(pruned.iter().sum::<f64>() < exact.iter().sum::<f64>());
    }

    #[test]
    fn probe_scores_are_probabilities() {
        // Each score is an individual probability; the cross-node sum is
        // NOT bounded by 1 in general (each node's score lives in its own
        // walk's probability space), so only per-node bounds are asserted.
        let acc = run_det(&[A, B, A, B], 0.0);
        for (v, &s) in acc.iter().enumerate() {
            assert!((0.0..=1.0).contains(&s), "score[{v}] = {s}");
        }
    }

    #[test]
    fn weight_scales_linearly() {
        let g = toy_graph();
        let params = ProbeParams {
            sqrt_c: 0.5,
            epsilon_p: 0.0,
        };
        let mut ws = ProbeWorkspace::new(8);
        let mut acc = vec![0.0; 8];
        let mut stats = QueryStats::default();
        deterministic(&g, &[A, B], &params, 0.25, &mut ws, &mut acc, &mut stats).unwrap();
        assert!((acc[D as usize] - 0.125).abs() < 1e-12);
    }

    #[test]
    fn randomized_probe_is_unbiased_on_toy_graph() {
        let g = toy_graph();
        let params = ProbeParams {
            sqrt_c: 0.5,
            epsilon_p: 0.0,
        };
        let exact = run_det(&[A, B, A, B], 0.0);
        let mut ws = ProbeWorkspace::new(8);
        let mut acc = vec![0.0; 8];
        let mut stats = QueryStats::default();
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 60_000;
        for _ in 0..trials {
            randomized(
                &g,
                &[A, B, A, B],
                &params,
                1.0 / trials as f64,
                &mut ws,
                &mut acc,
                &mut stats,
                &mut rng,
            )
            .unwrap();
        }
        for v in 0..8 {
            assert!(
                (acc[v] - exact[v]).abs() < 0.01,
                "node {v}: sampled {} vs exact {}",
                acc[v],
                exact[v]
            );
        }
    }

    #[test]
    fn randomized_probe_avoids_diagonal_nodes() {
        let g = toy_graph();
        let params = ProbeParams {
            sqrt_c: 0.9,
            epsilon_p: 0.0,
        };
        let mut ws = ProbeWorkspace::new(8);
        let mut stats = QueryStats::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let mut acc = vec![0.0; 8];
            randomized(
                &g,
                &[A, B],
                &params,
                1.0,
                &mut ws,
                &mut acc,
                &mut stats,
                &mut rng,
            )
            .unwrap();
            assert_eq!(acc[A as usize], 0.0, "avoided node a was emitted");
        }
    }

    #[test]
    fn hybrid_with_huge_threshold_equals_deterministic() {
        let g = toy_graph();
        let params = ProbeParams {
            sqrt_c: 0.5,
            epsilon_p: 0.0,
        };
        let exact = run_det(&[A, B, A, B], 0.0);
        let mut ws = ProbeWorkspace::new(8);
        let mut acc = vec![0.0; 8];
        let mut stats = QueryStats::default();
        let mut rng = StdRng::seed_from_u64(3);
        hybrid(
            &g,
            &[A, B, A, B],
            &params,
            1.0,
            1,
            1e9, // threshold never trips
            &mut ws,
            &mut acc,
            &mut stats,
            &mut rng,
        )
        .unwrap();
        assert_eq!(stats.hybrid_switches, 0);
        for v in 0..8 {
            assert!((acc[v] - exact[v]).abs() < 1e-12);
        }
    }

    #[test]
    fn hybrid_with_zero_threshold_is_unbiased() {
        // Force the randomized path immediately and check expectation.
        let g = toy_graph();
        let params = ProbeParams {
            sqrt_c: 0.5,
            epsilon_p: 0.0,
        };
        let exact = run_det(&[A, B, A, B], 0.0);
        let mut ws = ProbeWorkspace::new(8);
        let mut acc = vec![0.0; 8];
        let mut stats = QueryStats::default();
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 30_000;
        for _ in 0..trials {
            hybrid(
                &g,
                &[A, B, A, B],
                &params,
                1.0 / trials as f64,
                1,
                0.0, // always switch
                &mut ws,
                &mut acc,
                &mut stats,
                &mut rng,
            )
            .unwrap();
        }
        assert!(stats.hybrid_switches > 0);
        for v in 0..8 {
            assert!(
                (acc[v] - exact[v]).abs() < 0.012,
                "node {v}: {} vs {}",
                acc[v],
                exact[v]
            );
        }
    }

    #[test]
    fn randomized_candidate_union_vs_full_scan_agree() {
        // A graph where one hub's out-degree exceeds n, forcing the U = V
        // branch; expectation must still match the deterministic scores.
        let mut edges = Vec::new();
        let n = 12u32;
        for v in 1..n {
            edges.push((0, v)); // hub 0 -> everyone
            edges.push((v, 0)); // everyone -> hub
        }
        let g = CsrGraph::from_edges(n as usize, &edges);
        let params = ProbeParams {
            sqrt_c: 0.5,
            epsilon_p: 0.0,
        };
        let path = [1u32, 0u32];
        let mut ws = ProbeWorkspace::new(n as usize);
        let mut exact = vec![0.0; n as usize];
        let mut stats = QueryStats::default();
        deterministic(&g, &path, &params, 1.0, &mut ws, &mut exact, &mut stats).unwrap();
        let mut acc = vec![0.0; n as usize];
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 40_000;
        for _ in 0..trials {
            randomized(
                &g,
                &path,
                &params,
                1.0 / trials as f64,
                &mut ws,
                &mut acc,
                &mut stats,
                &mut rng,
            )
            .unwrap();
        }
        for v in 0..n as usize {
            assert!(
                (acc[v] - exact[v]).abs() < 0.02,
                "node {v}: {} vs {}",
                acc[v],
                exact[v]
            );
        }
    }
}
