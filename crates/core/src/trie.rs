//! The reverse-reachability tree (Algorithm 3's batching structure).
//!
//! All `nr` √c-walks from the query node share the root `u`; many share
//! longer prefixes too (the expected walk length is constant, so with
//! thousands of walks most prefixes repeat). [`WalkTrie`] stores the walks
//! as a weighted prefix tree: each node records a graph vertex and the
//! number of walks whose prefix ends there. The batch driver then probes
//! each *distinct* prefix once, scaling its scores by `weight / nr` —
//! identical in expectation to probing every walk separately, but with far
//! fewer probes.
//!
//! Two traversal APIs are exposed:
//!
//! * [`WalkTrie::for_each_prefix`] — depth-first prefix enumeration, the
//!   shape the legacy per-prefix batch driver consumes;
//! * [`WalkTrie::bfs_levels`] — a level-order (BFS) cursor that groups
//!   each level's nodes by parent, the shape the fused probe engine
//!   ([`crate::frontier`]) walks level-synchronously.

use probesim_graph::NodeId;

/// Arena index of a trie node.
pub type TrieIndex = u32;

#[derive(Debug, Clone)]
struct TrieNode {
    /// Graph vertex stored at this prefix position.
    vertex: NodeId,
    /// Number of walks sharing the prefix from the root to here.
    weight: u32,
    /// First child (linked-list arena layout).
    first_child: Option<TrieIndex>,
    /// Next sibling.
    next_sibling: Option<TrieIndex>,
    /// Most recently matched or created child — an O(1) shortcut past the
    /// sibling scan when consecutive walks repeat a popular step.
    last_child: Option<TrieIndex>,
}

/// Weighted prefix tree over √c-walks from a single query node.
#[derive(Debug, Clone)]
pub struct WalkTrie {
    nodes: Vec<TrieNode>,
    /// Trie indices of the most recently inserted walk's non-root path.
    /// Walks mostly share prefixes, so checking this chain first makes
    /// inserting `nr` similar walks amortized O(walk length) instead of
    /// O(walk length · branching).
    last_path: Vec<TrieIndex>,
}

impl WalkTrie {
    /// An empty trie rooted at the query node `u` (root weight counts the
    /// inserted walks; the paper fixes it to `nr` after inserting all).
    pub fn new(u: NodeId) -> Self {
        WalkTrie {
            nodes: vec![TrieNode {
                vertex: u,
                weight: 0,
                first_child: None,
                next_sibling: None,
                last_child: None,
            }],
            last_path: Vec::new(),
        }
    }

    /// Number of trie nodes (== distinct walk prefixes, including the
    /// root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Total number of walks inserted.
    pub fn total_walks(&self) -> u32 {
        self.nodes[0].weight
    }

    /// The graph vertex stored at trie node `idx`.
    #[inline]
    pub fn vertex(&self, idx: TrieIndex) -> NodeId {
        self.nodes[idx as usize].vertex
    }

    /// The number of walks sharing the prefix ending at trie node `idx`.
    #[inline]
    pub fn weight(&self, idx: TrieIndex) -> u32 {
        self.nodes[idx as usize].weight
    }

    /// Inserts one walk `(u1 = root, u2, …, uℓ)`; increments the weight of
    /// every prefix node on its path (Lines 5–10 of Algorithm 3).
    ///
    /// Lookup is accelerated by the last-path cache (consecutive walks
    /// usually share a prefix) and a per-node last-child cache; both only
    /// short-circuit the sibling scan, so the resulting structure and
    /// weights are identical to the plain linked-list insert.
    ///
    /// Panics if the walk does not start at the root vertex.
    pub fn insert(&mut self, walk: &[NodeId]) {
        assert!(!walk.is_empty(), "cannot insert an empty walk");
        assert_eq!(
            walk[0], self.nodes[0].vertex,
            "walk must start at the trie root"
        );
        self.nodes[0].weight += 1;
        let mut current: TrieIndex = 0;
        let mut on_last_path = true;
        for (depth, &vertex) in walk[1..].iter().enumerate() {
            let cached = if on_last_path {
                // Invariant: last_path[0..depth] matched this walk so far,
                // so last_path[depth] (if present) is a child of `current`.
                self.last_path.get(depth).copied()
            } else {
                None
            };
            match cached {
                Some(idx) if self.nodes[idx as usize].vertex == vertex => {
                    current = idx;
                }
                _ => {
                    current = self.child_or_insert(current, vertex);
                    if on_last_path {
                        on_last_path = false;
                        self.last_path.truncate(depth);
                    }
                    self.last_path.push(current);
                }
            }
            self.nodes[current as usize].weight += 1;
        }
    }

    /// Finds the child of `parent` holding `vertex`, creating it (weight 0)
    /// if missing.
    fn child_or_insert(&mut self, parent: TrieIndex, vertex: NodeId) -> TrieIndex {
        if let Some(idx) = self.nodes[parent as usize].last_child {
            if self.nodes[idx as usize].vertex == vertex {
                return idx;
            }
        }
        let mut link = self.nodes[parent as usize].first_child;
        let mut last: Option<TrieIndex> = None;
        while let Some(idx) = link {
            if self.nodes[idx as usize].vertex == vertex {
                self.nodes[parent as usize].last_child = Some(idx);
                return idx;
            }
            last = Some(idx);
            link = self.nodes[idx as usize].next_sibling;
        }
        let new_idx = self.nodes.len() as TrieIndex;
        self.nodes.push(TrieNode {
            vertex,
            weight: 0,
            first_child: None,
            next_sibling: None,
            last_child: None,
        });
        match last {
            Some(idx) => self.nodes[idx as usize].next_sibling = Some(new_idx),
            None => self.nodes[parent as usize].first_child = Some(new_idx),
        }
        self.nodes[parent as usize].last_child = Some(new_idx);
        new_idx
    }

    /// Visits every root-to-node path of length ≥ 2 (the probeable
    /// prefixes), calling `visit(path, weight)` with the path's graph
    /// vertices and the number of walks sharing it.
    ///
    /// Uses an explicit DFS stack; the `path` buffer is reused across
    /// calls, so callers must not retain it.
    pub fn for_each_prefix<F: FnMut(&[NodeId], u32)>(&self, mut visit: F) {
        let infallible: Result<(), std::convert::Infallible> =
            self.try_for_each_prefix(|path, weight| {
                visit(path, weight);
                Ok(())
            });
        infallible.expect("invariant: the infallible visitor returns Ok");
    }

    /// Fallible [`WalkTrie::for_each_prefix`]: stops the enumeration at
    /// the first `Err` and propagates it — the early-exit path the
    /// budgeted (cancellable) legacy probe driver needs.
    pub fn try_for_each_prefix<E, F: FnMut(&[NodeId], u32) -> Result<(), E>>(
        &self,
        mut visit: F,
    ) -> Result<(), E> {
        let mut path: Vec<NodeId> = vec![self.nodes[0].vertex];
        // Stack entries: (node index, depth in path when entered).
        let mut stack: Vec<(TrieIndex, usize)> = Vec::new();
        let mut link = self.nodes[0].first_child;
        while let Some(idx) = link {
            stack.push((idx, 1));
            link = self.nodes[idx as usize].next_sibling;
        }
        while let Some((idx, depth)) = stack.pop() {
            path.truncate(depth);
            let node = &self.nodes[idx as usize];
            path.push(node.vertex);
            visit(&path, node.weight)?;
            let mut child = node.first_child;
            while let Some(c) = child {
                stack.push((c, depth + 1));
                child = self.nodes[c as usize].next_sibling;
            }
        }
        Ok(())
    }

    /// The level-order (BFS) cursor: fills the parallel `order_nodes` /
    /// `order_parents` lanes with (node, parent) entries and
    /// `level_starts` with the boundaries of each depth, so depth
    /// `d ≥ 1` occupies lane index range
    /// `level_starts[d-1]..level_starts[d]` (the root, depth 0, is not
    /// listed — it is always index 0). The lanes are struct-of-arrays
    /// on purpose: the fused sweep's group loop scans only the parent
    /// lane, a dense `u32` stream.
    ///
    /// Two ordering guarantees the fused probe engine relies on:
    ///
    /// * levels are contiguous and emitted shallow-to-deep;
    /// * within a level, children of the same parent are **consecutive**,
    ///   so a level can be consumed as per-parent groups without sorting.
    ///
    /// All three buffers are cleared first; callers pool them across
    /// queries (see [`crate::workspace::FrontierArena`]).
    pub fn bfs_levels(
        &self,
        order_nodes: &mut Vec<TrieIndex>,
        order_parents: &mut Vec<TrieIndex>,
        level_starts: &mut Vec<usize>,
    ) {
        order_nodes.clear();
        order_parents.clear();
        level_starts.clear();
        level_starts.push(0);
        let mut link = self.nodes[0].first_child;
        while let Some(c) = link {
            order_nodes.push(c);
            order_parents.push(0);
            link = self.nodes[c as usize].next_sibling;
        }
        let mut begin = 0;
        while begin < order_nodes.len() {
            let end = order_nodes.len();
            level_starts.push(end);
            for i in begin..end {
                let parent = order_nodes[i];
                let mut link = self.nodes[parent as usize].first_child;
                while let Some(c) = link {
                    order_nodes.push(c);
                    order_parents.push(parent);
                    link = self.nodes[c as usize].next_sibling;
                }
            }
            begin = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Collects (path, weight) pairs for assertion convenience.
    fn collect(trie: &WalkTrie) -> HashMap<Vec<NodeId>, u32> {
        let mut out = HashMap::new();
        trie.for_each_prefix(|path, w| {
            out.insert(path.to_vec(), w);
        });
        out
    }

    #[test]
    fn paper_figure3_example() {
        // Figure 3(a): walks (a,b,c) and (a,c,a); then insert (a,b,a).
        // Encode a=0, b=1, c=2.
        let mut t = WalkTrie::new(0);
        t.insert(&[0, 1, 2]);
        t.insert(&[0, 2, 0]);
        // 3(a): root weight 2, children b=1 (w1), c=1 (w1), grandchildren.
        assert_eq!(t.total_walks(), 2);
        t.insert(&[0, 1, 0]);
        // 3(b): root w=3, b child w=2, new grandchild a under b with w=1.
        assert_eq!(t.total_walks(), 3);
        let paths = collect(&t);
        assert_eq!(paths[&vec![0, 1]], 2);
        assert_eq!(paths[&vec![0, 1, 2]], 1);
        assert_eq!(paths[&vec![0, 1, 0]], 1);
        assert_eq!(paths[&vec![0, 2]], 1);
        assert_eq!(paths[&vec![0, 2, 0]], 1);
        assert_eq!(paths.len(), 5);
        // 6 trie nodes total (root + 5), exactly as in Figure 3(b).
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn shared_prefixes_are_stored_once() {
        let mut t = WalkTrie::new(7);
        for _ in 0..100 {
            t.insert(&[7, 3, 5]);
        }
        assert_eq!(t.len(), 3);
        let paths = collect(&t);
        assert_eq!(paths[&vec![7, 3]], 100);
        assert_eq!(paths[&vec![7, 3, 5]], 100);
    }

    #[test]
    fn single_node_walks_add_weight_but_no_prefixes() {
        let mut t = WalkTrie::new(1);
        t.insert(&[1]);
        t.insert(&[1]);
        assert_eq!(t.total_walks(), 2);
        assert!(t.is_empty());
        assert_eq!(collect(&t).len(), 0);
    }

    #[test]
    fn weights_sum_consistency() {
        // At each depth, child weights sum to ≤ parent weight, and the sum
        // of depth-1 weights equals the number of walks of length ≥ 2.
        let mut t = WalkTrie::new(0);
        let walks: Vec<Vec<NodeId>> = vec![
            vec![0, 1],
            vec![0, 1, 2],
            vec![0, 2],
            vec![0],
            vec![0, 1, 2],
        ];
        for w in &walks {
            t.insert(w);
        }
        let paths = collect(&t);
        let depth1_sum: u32 = paths
            .iter()
            .filter(|(p, _)| p.len() == 2)
            .map(|(_, &w)| w)
            .sum();
        assert_eq!(depth1_sum, 4); // all walks except the bare [0]
        assert_eq!(paths[&vec![0, 1, 2]], 2);
    }

    #[test]
    #[should_panic(expected = "start at the trie root")]
    fn wrong_root_panics() {
        let mut t = WalkTrie::new(0);
        t.insert(&[1, 0]);
    }

    #[test]
    fn path_buffer_is_correct_across_branches() {
        // Regression: DFS must truncate the shared path buffer correctly
        // when jumping between branches of different depth.
        let mut t = WalkTrie::new(0);
        t.insert(&[0, 1, 2, 3]);
        t.insert(&[0, 4]);
        t.insert(&[0, 1, 5]);
        let paths = collect(&t);
        assert!(paths.contains_key(&vec![0, 4]));
        assert!(paths.contains_key(&vec![0, 1, 5]));
        assert!(paths.contains_key(&vec![0, 1, 2, 3]));
        for p in paths.keys() {
            assert_eq!(p[0], 0, "all paths start at the root: {p:?}");
        }
    }

    /// Reference insert without the last-path / last-child caches: the
    /// exact code shape the caches replaced.
    fn naive_insert(t: &mut WalkTrie, walk: &[NodeId]) {
        t.nodes[0].weight += 1;
        let mut current: TrieIndex = 0;
        for &vertex in &walk[1..] {
            let mut link = t.nodes[current as usize].first_child;
            let mut last: Option<TrieIndex> = None;
            let mut found = None;
            while let Some(idx) = link {
                if t.nodes[idx as usize].vertex == vertex {
                    found = Some(idx);
                    break;
                }
                last = Some(idx);
                link = t.nodes[idx as usize].next_sibling;
            }
            current = found.unwrap_or_else(|| {
                let new_idx = t.nodes.len() as TrieIndex;
                t.nodes.push(TrieNode {
                    vertex,
                    weight: 0,
                    first_child: None,
                    next_sibling: None,
                    last_child: None,
                });
                match last {
                    Some(idx) => t.nodes[idx as usize].next_sibling = Some(new_idx),
                    None => t.nodes[current as usize].first_child = Some(new_idx),
                }
                new_idx
            });
            t.nodes[current as usize].weight += 1;
        }
    }

    #[test]
    fn cached_insert_matches_naive_insert_exactly() {
        // Pseudo-random walk mix with heavy prefix sharing, inserted into
        // a cached trie and a cache-free reference: identical prefixes,
        // weights, and even node numbering (caches must not change where
        // nodes are created).
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rand = move |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        };
        let mut cached = WalkTrie::new(0);
        let mut naive = WalkTrie::new(0);
        for _ in 0..500 {
            let len = 1 + rand(6) as usize;
            let mut walk = vec![0u32];
            for _ in 1..len {
                walk.push(rand(5) as u32);
            }
            cached.insert(&walk);
            naive_insert(&mut naive, &walk);
        }
        assert_eq!(cached.len(), naive.len());
        assert_eq!(cached.total_walks(), naive.total_walks());
        assert_eq!(collect(&cached), collect(&naive));
        for idx in 0..cached.len() as TrieIndex {
            assert_eq!(cached.vertex(idx), naive.vertex(idx), "node {idx}");
            assert_eq!(cached.weight(idx), naive.weight(idx), "node {idx}");
        }
    }

    #[test]
    fn last_path_cache_survives_shorter_and_diverging_walks() {
        let mut t = WalkTrie::new(0);
        t.insert(&[0, 1, 2, 3]); // seeds the cache
        t.insert(&[0, 1]); // shorter, fully on the cached path
        t.insert(&[0, 1, 2, 4]); // diverges at depth 2
        t.insert(&[0, 5]); // diverges at depth 0
        t.insert(&[0, 5, 2]); // extends the new path
        let paths = collect(&t);
        assert_eq!(paths[&vec![0, 1]], 3);
        assert_eq!(paths[&vec![0, 1, 2]], 2);
        assert_eq!(paths[&vec![0, 1, 2, 3]], 1);
        assert_eq!(paths[&vec![0, 1, 2, 4]], 1);
        assert_eq!(paths[&vec![0, 5]], 2);
        assert_eq!(paths[&vec![0, 5, 2]], 1);
        assert_eq!(t.total_walks(), 5);
    }

    #[test]
    fn bfs_levels_visits_every_node_grouped_by_parent() {
        let mut t = WalkTrie::new(0);
        t.insert(&[0, 1, 2, 3]);
        t.insert(&[0, 4]);
        t.insert(&[0, 1, 5]);
        t.insert(&[0, 4, 2]);
        let mut order_nodes = Vec::new();
        let mut order_parents = Vec::new();
        let mut level_starts = Vec::new();
        t.bfs_levels(&mut order_nodes, &mut order_parents, &mut level_starts);
        // Lanes are parallel, and every non-root node appears exactly once.
        assert_eq!(order_nodes.len(), order_parents.len());
        assert_eq!(order_nodes.len(), t.len() - 1);
        let mut seen: Vec<TrieIndex> = order_nodes.clone();
        seen.sort_unstable();
        assert_eq!(seen, (1..t.len() as TrieIndex).collect::<Vec<_>>());
        // Levels are contiguous and shallow-to-deep: depth 1 = {1, 4},
        // depth 2 = {2, 5, 2'}, depth 3 = {3}.
        assert_eq!(level_starts.first(), Some(&0));
        assert_eq!(level_starts.last(), Some(&order_nodes.len()));
        assert_eq!(level_starts.len(), 4, "three levels: {level_starts:?}");
        let depth1 = &order_parents[level_starts[0]..level_starts[1]];
        assert_eq!(depth1.len(), 2);
        assert!(depth1.iter().all(|&p| p == 0));
        // Within a level, siblings are consecutive (grouped by parent).
        for level in level_starts.windows(2) {
            let slice = &order_parents[level[0]..level[1]];
            let mut seen_parents: Vec<TrieIndex> = Vec::new();
            for &parent in slice {
                match seen_parents.last() {
                    Some(&last) if last == parent => {}
                    _ => {
                        assert!(
                            !seen_parents.contains(&parent),
                            "parent {parent} split across the level"
                        );
                        seen_parents.push(parent);
                    }
                }
            }
        }
        // Parent links are consistent with the vertex chains.
        for (&node, &parent) in order_nodes.iter().zip(&order_parents) {
            assert!(parent < node, "BFS parents precede children");
            let _ = (t.vertex(node), t.weight(node), t.vertex(parent));
        }
    }

    #[test]
    fn bfs_levels_on_empty_trie() {
        let t = WalkTrie::new(9);
        let mut order_nodes = vec![7];
        let mut order_parents = vec![7];
        let mut level_starts = vec![42];
        t.bfs_levels(&mut order_nodes, &mut order_parents, &mut level_starts);
        assert!(order_nodes.is_empty());
        assert!(order_parents.is_empty());
        assert_eq!(level_starts, vec![0]);
    }
}
