//! The reverse-reachability tree (Algorithm 3's batching structure).
//!
//! All `nr` √c-walks from the query node share the root `u`; many share
//! longer prefixes too (the expected walk length is constant, so with
//! thousands of walks most prefixes repeat). [`WalkTrie`] stores the walks
//! as a weighted prefix tree: each node records a graph vertex and the
//! number of walks whose prefix ends there. The batch driver then probes
//! each *distinct* prefix once, scaling its scores by `weight / nr` —
//! identical in expectation to probing every walk separately, but with far
//! fewer probes.

use probesim_graph::NodeId;

/// Arena index of a trie node.
pub type TrieIndex = u32;

#[derive(Debug, Clone)]
struct TrieNode {
    /// Graph vertex stored at this prefix position.
    vertex: NodeId,
    /// Number of walks sharing the prefix from the root to here.
    weight: u32,
    /// First child (linked-list arena layout).
    first_child: Option<TrieIndex>,
    /// Next sibling.
    next_sibling: Option<TrieIndex>,
}

/// Weighted prefix tree over √c-walks from a single query node.
#[derive(Debug, Clone)]
pub struct WalkTrie {
    nodes: Vec<TrieNode>,
}

impl WalkTrie {
    /// An empty trie rooted at the query node `u` (root weight counts the
    /// inserted walks; the paper fixes it to `nr` after inserting all).
    pub fn new(u: NodeId) -> Self {
        WalkTrie {
            nodes: vec![TrieNode {
                vertex: u,
                weight: 0,
                first_child: None,
                next_sibling: None,
            }],
        }
    }

    /// Number of trie nodes (== distinct walk prefixes, including the
    /// root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Total number of walks inserted.
    pub fn total_walks(&self) -> u32 {
        self.nodes[0].weight
    }

    /// Inserts one walk `(u1 = root, u2, …, uℓ)`; increments the weight of
    /// every prefix node on its path (Lines 5–10 of Algorithm 3).
    ///
    /// Panics if the walk does not start at the root vertex.
    pub fn insert(&mut self, walk: &[NodeId]) {
        assert!(!walk.is_empty(), "cannot insert an empty walk");
        assert_eq!(
            walk[0], self.nodes[0].vertex,
            "walk must start at the trie root"
        );
        self.nodes[0].weight += 1;
        let mut current: TrieIndex = 0;
        for &vertex in &walk[1..] {
            current = self.child_or_insert(current, vertex);
            self.nodes[current as usize].weight += 1;
        }
    }

    /// Finds the child of `parent` holding `vertex`, creating it (weight 0)
    /// if missing.
    fn child_or_insert(&mut self, parent: TrieIndex, vertex: NodeId) -> TrieIndex {
        let mut link = self.nodes[parent as usize].first_child;
        let mut last: Option<TrieIndex> = None;
        while let Some(idx) = link {
            if self.nodes[idx as usize].vertex == vertex {
                return idx;
            }
            last = Some(idx);
            link = self.nodes[idx as usize].next_sibling;
        }
        let new_idx = self.nodes.len() as TrieIndex;
        self.nodes.push(TrieNode {
            vertex,
            weight: 0,
            first_child: None,
            next_sibling: None,
        });
        match last {
            Some(idx) => self.nodes[idx as usize].next_sibling = Some(new_idx),
            None => self.nodes[parent as usize].first_child = Some(new_idx),
        }
        new_idx
    }

    /// Visits every root-to-node path of length ≥ 2 (the probeable
    /// prefixes), calling `visit(path, weight)` with the path's graph
    /// vertices and the number of walks sharing it.
    ///
    /// Uses an explicit DFS stack; the `path` buffer is reused across
    /// calls, so callers must not retain it.
    pub fn for_each_prefix<F: FnMut(&[NodeId], u32)>(&self, mut visit: F) {
        let mut path: Vec<NodeId> = vec![self.nodes[0].vertex];
        // Stack entries: (node index, depth in path when entered).
        let mut stack: Vec<(TrieIndex, usize)> = Vec::new();
        let mut link = self.nodes[0].first_child;
        while let Some(idx) = link {
            stack.push((idx, 1));
            link = self.nodes[idx as usize].next_sibling;
        }
        while let Some((idx, depth)) = stack.pop() {
            path.truncate(depth);
            let node = &self.nodes[idx as usize];
            path.push(node.vertex);
            visit(&path, node.weight);
            let mut child = node.first_child;
            while let Some(c) = child {
                stack.push((c, depth + 1));
                child = self.nodes[c as usize].next_sibling;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Collects (path, weight) pairs for assertion convenience.
    fn collect(trie: &WalkTrie) -> HashMap<Vec<NodeId>, u32> {
        let mut out = HashMap::new();
        trie.for_each_prefix(|path, w| {
            out.insert(path.to_vec(), w);
        });
        out
    }

    #[test]
    fn paper_figure3_example() {
        // Figure 3(a): walks (a,b,c) and (a,c,a); then insert (a,b,a).
        // Encode a=0, b=1, c=2.
        let mut t = WalkTrie::new(0);
        t.insert(&[0, 1, 2]);
        t.insert(&[0, 2, 0]);
        // 3(a): root weight 2, children b=1 (w1), c=1 (w1), grandchildren.
        assert_eq!(t.total_walks(), 2);
        t.insert(&[0, 1, 0]);
        // 3(b): root w=3, b child w=2, new grandchild a under b with w=1.
        assert_eq!(t.total_walks(), 3);
        let paths = collect(&t);
        assert_eq!(paths[&vec![0, 1]], 2);
        assert_eq!(paths[&vec![0, 1, 2]], 1);
        assert_eq!(paths[&vec![0, 1, 0]], 1);
        assert_eq!(paths[&vec![0, 2]], 1);
        assert_eq!(paths[&vec![0, 2, 0]], 1);
        assert_eq!(paths.len(), 5);
        // 6 trie nodes total (root + 5), exactly as in Figure 3(b).
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn shared_prefixes_are_stored_once() {
        let mut t = WalkTrie::new(7);
        for _ in 0..100 {
            t.insert(&[7, 3, 5]);
        }
        assert_eq!(t.len(), 3);
        let paths = collect(&t);
        assert_eq!(paths[&vec![7, 3]], 100);
        assert_eq!(paths[&vec![7, 3, 5]], 100);
    }

    #[test]
    fn single_node_walks_add_weight_but_no_prefixes() {
        let mut t = WalkTrie::new(1);
        t.insert(&[1]);
        t.insert(&[1]);
        assert_eq!(t.total_walks(), 2);
        assert!(t.is_empty());
        assert_eq!(collect(&t).len(), 0);
    }

    #[test]
    fn weights_sum_consistency() {
        // At each depth, child weights sum to ≤ parent weight, and the sum
        // of depth-1 weights equals the number of walks of length ≥ 2.
        let mut t = WalkTrie::new(0);
        let walks: Vec<Vec<NodeId>> = vec![
            vec![0, 1],
            vec![0, 1, 2],
            vec![0, 2],
            vec![0],
            vec![0, 1, 2],
        ];
        for w in &walks {
            t.insert(w);
        }
        let paths = collect(&t);
        let depth1_sum: u32 = paths
            .iter()
            .filter(|(p, _)| p.len() == 2)
            .map(|(_, &w)| w)
            .sum();
        assert_eq!(depth1_sum, 4); // all walks except the bare [0]
        assert_eq!(paths[&vec![0, 1, 2]], 2);
    }

    #[test]
    #[should_panic(expected = "start at the trie root")]
    fn wrong_root_panics() {
        let mut t = WalkTrie::new(0);
        t.insert(&[1, 0]);
    }

    #[test]
    fn path_buffer_is_correct_across_branches() {
        // Regression: DFS must truncate the shared path buffer correctly
        // when jumping between branches of different depth.
        let mut t = WalkTrie::new(0);
        t.insert(&[0, 1, 2, 3]);
        t.insert(&[0, 4]);
        t.insert(&[0, 1, 5]);
        let paths = collect(&t);
        assert!(paths.contains_key(&vec![0, 4]));
        assert!(paths.contains_key(&vec![0, 1, 5]));
        assert!(paths.contains_key(&vec![0, 1, 2, 3]));
        for p in paths.keys() {
            assert_eq!(p[0], 0, "all paths start at the root: {p:?}");
        }
    }
}
