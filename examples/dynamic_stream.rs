//! Real-time SimRank on a dynamic graph — the headline scenario of the
//! paper: index-free queries interleaved with a stream of edge updates.
//!
//! The example maintains a live `DynamicGraph` under a stream of edge
//! insertions and deletions, answering top-k queries between batches with
//! two engines:
//!
//! * **ProbeSim** — nothing to maintain; every query reads the current
//!   graph through a fresh `QuerySession` and is immediately consistent.
//!   (A session borrows the graph, so the borrow checker itself enforces
//!   the query/update phases of the stream.)
//! * **TSF** — its one-way-graph index is maintained incrementally on each
//!   update (the best known index-based approach for dynamic graphs).
//!
//! ```text
//! cargo run --release --example dynamic_stream
//! ```

// Printing is this target's entire job: stdout is the user interface.
#![allow(clippy::print_stdout)]

use probesim::prelude::*;
use probesim_datasets::gens;
use probesim_eval::timed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), QueryError> {
    // Start from a mid-size power-law graph and evolve it.
    let initial = gens::chung_lu(5_000, 40_000, 2.3, 3);
    let mut graph = DynamicGraph::from_edges(initial.num_nodes(), &initial.edges());
    let n = graph.num_nodes() as NodeId;

    let probesim = ProbeSim::new(ProbeSimConfig::paper(0.1).with_seed(5));
    let (mut tsf, tsf_build_secs) = timed(|| {
        Tsf::build(
            &graph,
            TsfConfig {
                decay: 0.6,
                rg: 100,
                rq: 20,
                depth: 10,
                seed: 6,
            },
        )
    });
    println!(
        "initial graph: n={} m={} | TSF index built in {:.2}s ({} MiB)",
        graph.num_nodes(),
        graph.num_edges(),
        tsf_build_secs,
        tsf.index_bytes() >> 20
    );
    println!("ProbeSim needs no build step — it is index-free.\n");

    let mut rng = StdRng::seed_from_u64(8);
    let query_node = loop {
        let candidate = rng.gen_range(0..n);
        if graph.has_in_edges(candidate) {
            break candidate;
        }
    };

    let batches = 5;
    let updates_per_batch = 2_000;
    for batch in 1..=batches {
        // Apply a batch of random updates (75% insertions, 25% deletions).
        let (_, update_secs) = timed(|| {
            let mut applied = 0;
            while applied < updates_per_batch {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u == v {
                    continue;
                }
                if rng.gen::<f64>() < 0.75 {
                    if graph.insert_edge(u, v) {
                        tsf.on_edge_inserted(&graph, u, v, &mut rng);
                        applied += 1;
                    }
                } else if graph.remove_edge(u, v) {
                    tsf.on_edge_removed(&graph, u, v, &mut rng);
                    applied += 1;
                }
            }
        });

        // Query both engines against the *current* graph. The session is
        // scoped so its borrow ends before the next update batch.
        let (ps_output, ps_secs) = {
            let mut session = probesim.session(&graph);
            let (out, secs) = timed(|| {
                session.run(Query::TopK {
                    node: query_node,
                    k: 5,
                })
            });
            (out?, secs)
        };
        let ps_top = ps_output.ranking();
        let (tsf_top, tsf_secs) = timed(|| tsf.top_k(&graph, query_node, 5));
        let overlap = ps_top
            .iter()
            .filter(|(v, _)| tsf_top.iter().any(|(w, _)| w == v))
            .count();
        println!(
            "batch {batch}: {updates_per_batch} updates in {:.2}s | m = {} | \
             ProbeSim query {:.3}s ({} nodes touched), TSF query {:.3}s, top-5 overlap {overlap}/5",
            update_secs,
            graph.num_edges(),
            ps_secs,
            ps_output.scores.len(),
            tsf_secs
        );
        println!(
            "  ProbeSim top-5: {:?}",
            ps_top.iter().map(|&(v, _)| v).collect::<Vec<_>>()
        );
    }

    println!(
        "\nNote: ProbeSim's answers always reflect the live graph; TSF's index \
         stays consistent only because every update paid a maintenance cost."
    );
    Ok(())
}
