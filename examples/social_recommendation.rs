//! "Who to follow": SimRank-based recommendation on a synthetic social
//! network — the social-network-analysis use case from the paper's
//! introduction.
//!
//! Two users are similar when similar people follow them; the top-k
//! SimRank neighbors of a user are natural follow recommendations. The
//! example builds a preferential-attachment graph, serves a *batch* of
//! users through `ProbeSim::par_batch` (per-thread pooled sessions, the
//! service-shaped path), and cross-checks one user's recommendations
//! against exact SimRank.
//!
//! ```text
//! cargo run --release --example social_recommendation
//! ```

// Printing is this target's entire job: stdout is the user interface.
#![allow(clippy::print_stdout)]

use probesim::prelude::*;
use probesim_datasets::gens;
use probesim_eval::{metrics, sample_query_nodes};

fn main() -> Result<(), QueryError> {
    // A 3k-user social graph with heavy-tailed popularity.
    let graph = gens::preferential_attachment(3_000, 6, true, 7);
    println!(
        "social graph: {} users, {} follow edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Serve recommendations for a whole cohort in one parallel batch.
    let k = 10;
    let cohort = sample_query_nodes(&graph, 8, 99);
    let queries: Vec<Query> = cohort.iter().map(|&node| Query::TopK { node, k }).collect();
    let engine = ProbeSim::new(ProbeSimConfig::paper(0.05).with_seed(1));
    let batch = engine.par_batch(&graph, &queries, 0)?;
    println!(
        "served {} users in one batch ({} walks, {} probes total)\n",
        batch.outputs.len(),
        batch.stats.walks,
        batch.stats.probes
    );

    // Deep-dive on the first user of the cohort.
    let user = cohort[0];
    let recs = batch.outputs[0].ranking();
    println!(
        "recommending for user {user} (in-degree {})",
        graph.in_degree(user)
    );
    println!("\ntop-{k} recommendations (ProbeSim):");
    for (rank, (v, score)) in recs.iter().enumerate() {
        println!(
            "  {:>2}. user {:>5}  similarity {:.4}  (popularity {})",
            rank + 1,
            v,
            score,
            graph.in_degree(*v)
        );
    }

    // Validate against exact SimRank (feasible at this size).
    let truth = GroundTruth::compute_with_iterations(&graph, 0.6, 25);
    let truth_topk = truth.top_k(user, k);
    let truth_ids: Vec<NodeId> = truth_topk.iter().map(|&(v, _)| v).collect();
    let rec_ids: Vec<NodeId> = recs.iter().map(|&(v, _)| v).collect();
    let precision = metrics::precision_at_k(&rec_ids, &truth_ids, k);
    let tau = metrics::kendall_tau(&rec_ids, &truth.score_map(user), k);
    println!("\nagreement with exact SimRank: precision@{k} = {precision:.2}, tau = {tau:.2}");
    println!("exact top-3: {:?}", &truth_ids[..3.min(truth_ids.len())]);
    Ok(())
}
