//! Quickstart: index-free SimRank on the paper's own toy graph.
//!
//! Builds the 8-node running-example graph (Figure 1 of the paper), asks
//! ProbeSim for the similarity of every node to `a`, and compares with the
//! exact values from the Power Method (Table 2).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use probesim::prelude::*;
use probesim_graph::toy::{toy_graph, A, LABELS, TOY_DECAY};

fn main() {
    let graph = toy_graph();
    println!(
        "toy graph: {} nodes, {} edges (Figure 1 of the paper)",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Exact SimRank via the Power Method (the ground-truth oracle).
    let exact = PowerMethod::ground_truth(TOY_DECAY).all_pairs(&graph);

    // ProbeSim: no index, absolute error <= 0.02 with probability 0.99.
    let engine = ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, 0.02, 0.01).with_seed(42));
    let result = engine.single_source(&graph, A);

    println!("\nsimilarity to node a (c = {TOY_DECAY}):");
    println!(
        "{:<6} {:>10} {:>10} {:>8}",
        "node", "exact", "probesim", "|err|"
    );
    for v in graph.nodes() {
        let e = exact.get(A, v);
        let p = result.score(v);
        println!(
            "{:<6} {:>10.4} {:>10.4} {:>8.4}",
            LABELS[v as usize],
            e,
            p,
            (e - p).abs()
        );
    }

    let top = engine.top_k(&graph, A, 3);
    println!("\ntop-3 most similar to a:");
    for (rank, (v, score)) in top.iter().enumerate() {
        println!("  {}. {} (s = {:.4})", rank + 1, LABELS[*v as usize], score);
    }

    println!(
        "\nquery stats: {} walks, {} probes, {} edges expanded",
        result.stats.walks, result.stats.probes, result.stats.edges_expanded
    );
}
