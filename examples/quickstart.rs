//! Quickstart: index-free SimRank on the paper's own toy graph, through
//! the session API.
//!
//! Builds the 8-node running-example graph (Figure 1 of the paper), opens
//! a [`QuerySession`] bound to it, asks ProbeSim for the similarity of
//! every node to `a`, and compares with the exact values from the Power
//! Method (Table 2).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// Printing is this target's entire job: stdout is the user interface.
#![allow(clippy::print_stdout)]

use probesim::prelude::*;
use probesim_graph::toy::{toy_graph, A, LABELS, TOY_DECAY};

fn main() -> Result<(), QueryError> {
    let graph = toy_graph();
    println!(
        "toy graph: {} nodes, {} edges (Figure 1 of the paper)",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Exact SimRank via the Power Method (the ground-truth oracle).
    let exact = PowerMethod::ground_truth(TOY_DECAY).all_pairs(&graph);

    // ProbeSim: no index, absolute error <= 0.02 with probability 0.99.
    // The session owns all scratch memory; every query after the first
    // reuses it.
    let engine = ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, 0.02, 0.01).with_seed(42));
    let mut session = engine.session(&graph);
    let result = session.run(Query::SingleSource { node: A })?;

    println!("\nsimilarity to node a (c = {TOY_DECAY}):");
    println!(
        "{:<6} {:>10} {:>10} {:>8}",
        "node", "exact", "probesim", "|err|"
    );
    for v in graph.nodes() {
        let e = exact.get(A, v);
        let p = result.scores.score(v);
        println!(
            "{:<6} {:>10.4} {:>10.4} {:>8.4}",
            LABELS[v as usize],
            e,
            p,
            (e - p).abs()
        );
    }
    println!(
        "(sparse result: {} of {} nodes touched)",
        result.scores.len(),
        graph.num_nodes()
    );

    let top = session.run(Query::TopK { node: A, k: 3 })?;
    println!("\ntop-3 most similar to a:");
    for (rank, (v, score)) in top.ranking().iter().enumerate() {
        println!("  {}. {} (s = {:.4})", rank + 1, LABELS[*v as usize], score);
    }

    println!(
        "\nquery stats: {} walks, {} probes, {} edges expanded ({} queries on one session)",
        result.stats.walks,
        result.stats.probes,
        result.stats.edges_expanded,
        session.queries_run()
    );
    Ok(())
}
