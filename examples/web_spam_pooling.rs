//! Web-graph similarity search with pooling-based validation — the
//! web-mining / spam-analysis use case from the paper's introduction,
//! using the evaluation methodology of its Section 6.2.
//!
//! On a copying-model web graph (pages copy links from prototype pages,
//! so link farms and topic hubs share in-neighborhoods), we look for pages
//! structurally similar to a seed page. Exact ground truth is too
//! expensive at web scale, so the example validates the answers the way
//! the paper does on billion-edge graphs: pool the candidates from several
//! algorithms and let a high-precision Monte Carlo "expert" adjudicate.
//!
//! ```text
//! cargo run --release --example web_spam_pooling
//! ```

// Printing is this target's entire job: stdout is the user interface.
#![allow(clippy::print_stdout)]

use probesim::prelude::*;
use probesim_datasets::gens;
use probesim_eval::{metrics, sample_query_nodes, timed, Pool};

fn main() -> Result<(), QueryError> {
    // A 50k-page web graph: heavy link copying concentrates in-links.
    let graph = gens::copying_model(50_000, 12, 0.6, 17);
    println!(
        "web graph: {} pages, {} links",
        graph.num_nodes(),
        graph.num_edges()
    );

    let seed_page = sample_query_nodes(&graph, 1, 3)[0];
    let k = 20;
    println!("seed page: {seed_page} (pages with similar link profiles may be the same farm)\n");

    // Competing engines.
    let probesim = ProbeSim::new(ProbeSimConfig::paper(0.1).with_seed(21));
    let tsf = Tsf::build(
        &graph,
        TsfConfig {
            decay: 0.6,
            rg: 100,
            rq: 20,
            depth: 10,
            seed: 23,
        },
    );

    let mut session = probesim.session(&graph);
    let (ps_output, ps_secs) = timed(|| session.run(Query::TopK { node: seed_page, k }));
    let ps_output = ps_output?;
    let ps_list = ps_output.ranking();
    let (tsf_list, tsf_secs) = timed(|| tsf.top_k(&graph, seed_page, k));
    println!(
        "ProbeSim: {ps_secs:.3}s ({} of {} pages touched) | TSF: {tsf_secs:.3}s (index excluded)",
        ps_output.scores.len(),
        graph.num_nodes()
    );

    // Pool both answers; the MC expert (error <= 0.01, conf 99.9%) builds
    // the reference ranking exactly as in the paper's large-graph study.
    let expert = MonteCarlo::expert(0.6, 0.01, 0.001).with_seed(29);
    let (pool, pool_secs) = timed(|| {
        Pool::build(
            &graph,
            seed_page,
            &[ps_list.clone(), tsf_list.clone()],
            &expert,
            k,
        )
    });
    println!(
        "pool: {} candidates adjudicated in {pool_secs:.2}s\n",
        pool.pool_size()
    );

    let truth_ids = pool.truth_ids();
    for (name, list) in [("ProbeSim", &ps_list), ("TSF", &tsf_list)] {
        let ids: Vec<NodeId> = list.iter().map(|&(v, _)| v).collect();
        let precision = metrics::precision_at_k(&ids, &truth_ids, k);
        let ndcg = metrics::ndcg_at_k(list, &pool.truth_top_k, &pool.expert_scores, k);
        let tau = metrics::kendall_tau(&ids, &pool.expert_scores, k);
        println!("{name:<9} precision@{k} = {precision:.2}  ndcg = {ndcg:.3}  tau = {tau:.2}");
    }

    println!("\nexpert's top-5 structurally similar pages:");
    for (rank, (v, s)) in pool.truth_top_k.iter().take(5).enumerate() {
        println!(
            "  {}. page {:>6}  s = {:.4}  (in-degree {})",
            rank + 1,
            v,
            s,
            graph.in_degree(*v)
        );
    }
    Ok(())
}
