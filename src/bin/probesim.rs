//! `probesim` — command-line SimRank queries over edge-list graphs.
//!
//! ```text
//! probesim generate   <dataset> [--scale ci|laptop] [--out graph.psim]
//! probesim stats      <graph-file>
//! probesim query      <graph-file> --node N [--top K | --tau T] [--eps E] [--delta D]
//!                     [--decay C] [--seed S] [--probe-path fused|legacy]
//!                     [--engine probesim|index|auto] [--store] [--output text|json]
//! probesim batch      <graph-file> --nodes A,B,C [--top K] [--threads T] [--store]
//!                     [--engine probesim|index|auto] [--readers N] [--output text|json]
//! probesim serve-bench <graph-file> [--queries N] [--distinct D] [--workers W]
//!                     [--deadline-ms MS] [--work-cap W] [--cache-capacity C]
//!                     [--consistency latest|pinned|at-least] [--update-every K]
//!                     [--engine probesim|index|auto] [--replicas R] [--eps E] [--seed S]
//! probesim pair       <graph-file> --u A --v B [--walks R] [--decay C]
//! ```
//!
//! Graph files are either the text edge-list format (`u v` per line, `#`
//! comments — the format of the paper's SNAP datasets) or this crate's
//! binary format (written by `generate --out file.psim`); the magic bytes
//! decide.
//!
//! Queries run through `probesim_core::QuerySession`; invalid input is
//! reported as a typed [`QueryError`] message, never a panic. With
//! `--output json`, results are serialized as one JSON object per query
//! (sparse scores + stats) for downstream tooling.
//!
//! `--store` routes the loaded graph through the versioned
//! [`GraphStore`]: queries then run against an owned, version-pinned
//! `GraphSnapshot` — the serving configuration where readers never block
//! a writer — and answers are bit-for-bit identical to the direct CSR
//! path. `batch --store --readers N` shards the batch across `N` reader
//! threads, each holding its own snapshot clone
//! (`ProbeSim::par_batch_owned`).
//!
//! `--engine` selects the answering engine through the shared
//! [`EngineChoice`] wire form: `probesim` (index-free, the paper's
//! engine), `index` (the precomputed PPR-contribution table,
//! [`IndexEngine`]), or `auto` (in `serve-bench`, the service's adaptive
//! per-query planner). Answers are bit-identical across engines — the
//! per-query RNG is keyed by `(seed, node)` only — and the stats JSON
//! shows the `index_rows_used` / `index_rows_stale` replay split.
//!
//! `serve-bench` drives the full serving facade
//! (`probesim_service::QueryService`): a Zipf-repeated query stream with
//! deadlines, a consistency level and the version-keyed result cache,
//! printing the queue/exec/cache breakdown as one JSON object. With
//! `--replicas R` the same stream runs through the replicated fleet
//! (`probesim_fleet::Fleet`) instead — commits go through the durable
//! update log, reads through the consistency-aware router — and the
//! JSON gains a `fleet` object with per-endpoint health, restart counts
//! and last-salvage LSNs plus the supervisor's recovery counters.

// Printing is this target's entire job: stdout is the user interface.
#![allow(clippy::print_stdout)]

use std::process::ExitCode;

use probesim::prelude::*;
use probesim_baselines::MonteCarlo;
use probesim_core::QueryStats;
use probesim_graph::{io, CsrGraph, DegreeStats};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  probesim generate <dataset> [--scale ci|laptop] [--out FILE]
  probesim stats    <graph-file>
  probesim query    <graph-file> --node N [--top K | --tau T] [--eps E] [--delta D] [--decay C] [--seed S] [--probe-path fused|legacy] [--engine probesim|index|auto] [--store] [--output text|json]
  probesim batch    <graph-file> --nodes A,B,C [--top K] [--threads T] [--eps E] [--seed S] [--probe-path fused|legacy] [--engine probesim|index|auto] [--store] [--readers N] [--output text|json]
  probesim serve-bench <graph-file> [--queries N] [--distinct D] [--workers W] [--deadline-ms MS] [--work-cap W] [--cache-capacity C] [--consistency latest|pinned[:V]|at-least[:V]] [--engine probesim|index|auto] [--update-every K] [--replicas R] [--eps E] [--seed S]
  probesim pair     <graph-file> --u A --v B [--walks R] [--decay C] [--seed S]

  --store      route the graph through the versioned GraphStore and query an
               owned snapshot (identical answers; the serving configuration)
  --readers N  with --store: shard the batch over N snapshot-holding reader
               threads (default: --threads)
  --engine X   probesim (default, the index-free paper engine) | index (the
               PPR-contribution table) | auto (the per-query planner; in
               serve-bench the JSON reports which engine answered). Answers
               are bit-identical across engines. For query, index is always
               a cold build-through; in batch one table serves the whole
               node list sequentially, so repeated nodes replay their row
               (--threads/--readers apply to the probesim engine only)

serve-bench (drives the QueryService facade, prints one JSON object):
  --queries N          stream length (default 64)
  --distinct D         distinct query nodes behind the Zipf repeats (default 16)
  --workers W          service worker threads (default 0 = auto)
  --deadline-ms MS     per-request deadline in milliseconds (default: none)
  --work-cap W         per-request deterministic work cap (default: none)
  --cache-capacity C   result-cache entries, 0 disables (default 1024)
  --consistency X      the shared wire form: latest | pinned[:V] | at-least[:V]
                       (bare pinned/at-least pin the stream-start version 0)
  --update-every K     commit one random edge update every K queries (default 0);
                       each commit is chased by an AtLeastVersion read of its
                       own commit token (read-your-writes)
  --replicas R         serve through the replicated fleet instead: R log-tailing
                       replicas behind the consistency-aware router (default 0 =
                       single service); the JSON gains a \"fleet\" object with
                       per-endpoint health / restarts / last-salvage LSN and the
                       supervisor's recovery counters

datasets: Wiki-Vote HepTh AS HepPh LiveJournal IT-2004 Twitter Friendster";

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    let rest = &args[1..];
    match command.as_str() {
        "generate" => generate(rest),
        "stats" => stats(rest),
        "query" => query(rest),
        "batch" => batch(rest),
        "serve-bench" => serve_bench(rest),
        "pair" => pair(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Fetches the value after a `--flag`, parsed, or the default.
fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{name} expects a value"))?
            .parse()
            .map_err(|_| format!("cannot parse value for {name}")),
    }
}

fn flag_str<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// True when a value-less `--flag` is present.
fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Output format selector shared by `query` and `batch`.
#[derive(Clone, Copy, PartialEq)]
enum OutputFormat {
    Text,
    Json,
}

fn output_format(args: &[String]) -> Result<OutputFormat, String> {
    match flag_str(args, "--output").unwrap_or("text") {
        "text" => Ok(OutputFormat::Text),
        "json" => Ok(OutputFormat::Json),
        other => Err(format!("--output expects text|json, got {other:?}")),
    }
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    // Try the binary magic first, fall back to text.
    match io::read_binary_file(path) {
        Ok(g) => Ok(g),
        Err(_) => io::read_edge_list_file(path)
            .map(|(g, _labels)| g)
            .map_err(|e| format!("cannot read {path}: {e}")),
    }
}

fn generate(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("generate: missing dataset name")?;
    let dataset = Dataset::parse(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let scale = match flag_str(args, "--scale").unwrap_or("ci") {
        "ci" => Scale::Ci,
        "laptop" => Scale::Laptop,
        other => return Err(format!("--scale expects ci|laptop, got {other:?}")),
    };
    let graph = dataset.generate(scale);
    let stats = DegreeStats::compute(&graph);
    eprintln!(
        "generated {}: n={} m={} mean_deg={:.1}",
        dataset.name(),
        graph.num_nodes(),
        graph.num_edges(),
        stats.mean_degree
    );
    match flag_str(args, "--out") {
        Some(path) if path.ends_with(".psim") => {
            io::write_binary_file(path, &graph).map_err(|e| e.to_string())?;
            eprintln!("wrote binary graph to {path}");
        }
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
            io::write_edge_list_text(std::io::BufWriter::new(file), &graph)
                .map_err(|e| e.to_string())?;
            eprintln!("wrote text edge list to {path}");
        }
        None => {
            io::write_edge_list_text(std::io::stdout().lock(), &graph)
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats: missing graph file")?;
    let graph = load_graph(path)?;
    let s = DegreeStats::compute(&graph);
    println!("nodes            {}", s.num_nodes);
    println!("edges            {}", s.num_edges);
    println!("mean degree      {:.2}", s.mean_degree);
    println!("max in-degree    {}", s.max_in_degree);
    println!("max out-degree   {}", s.max_out_degree);
    println!(
        "zero in-degree   {} ({:.1}%)",
        s.zero_in_degree,
        100.0 * s.zero_in_degree as f64 / s.num_nodes.max(1) as f64
    );
    println!("in-degree gini   {:.3}", s.in_degree_gini);
    println!(
        "query-eligible   {:.1}%",
        100.0 * s.query_eligible_fraction()
    );
    Ok(())
}

fn engine_from_flags(args: &[String]) -> Result<ProbeSim, String> {
    let eps: f64 = flag(args, "--eps", 0.05)?;
    let delta: f64 = flag(args, "--delta", 0.01)?;
    let decay: f64 = flag(args, "--decay", 0.6)?;
    let seed: u64 = flag(args, "--seed", 2017)?;
    if !(0.0..1.0).contains(&decay) || decay <= 0.0 {
        return Err(format!("--decay must be in (0, 1), got {decay}"));
    }
    if !(0.0..1.0).contains(&eps) || eps <= 0.0 {
        return Err(format!("--eps must be in (0, 1), got {eps}"));
    }
    if !(0.0..1.0).contains(&delta) || delta <= 0.0 {
        return Err(format!("--delta must be in (0, 1), got {delta}"));
    }
    let mut config = ProbeSimConfig::new(decay, eps, delta).with_seed(seed);
    // A/B the probe engines from the CLI: the stats JSON then shows the
    // edges_expanded / frontier_merges difference directly.
    config.optimizations.fuse_probes = match flag_str(args, "--probe-path").unwrap_or("fused") {
        "fused" => true,
        "legacy" => false,
        other => return Err(format!("--probe-path expects fused|legacy, got {other:?}")),
    };
    Ok(ProbeSim::new(config))
}

/// Parses `--engine probesim|index|auto` through the shared
/// [`EngineChoice`] wire form — the same `FromStr` the service request
/// path and the fleet config use. Default: `probesim` (the index-free
/// paper engine).
fn engine_choice_from_flags(args: &[String]) -> Result<EngineChoice, String> {
    flag_str(args, "--engine")
        .unwrap_or("probesim")
        .parse()
        .map_err(|e: probesim::core::ParseEngineChoiceError| format!("--engine: {e}"))
}

fn query(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("query: missing graph file")?;
    let graph = load_graph(path)?;
    let node: NodeId = flag(args, "--node", NodeId::MAX)?;
    if node == NodeId::MAX {
        return Err("query: --node is required".into());
    }
    let format = output_format(args)?;
    let engine = engine_from_flags(args)?;
    let engine_choice = engine_choice_from_flags(args)?;
    // --tau selects a threshold query; --top (default 10) a top-k query.
    let query = match flag_str(args, "--tau") {
        Some(raw) => {
            let tau: f64 = raw
                .parse()
                .map_err(|_| "cannot parse value for --tau".to_string())?;
            Query::Threshold { node, tau }
        }
        None => Query::TopK {
            node,
            k: flag(args, "--top", 10)?,
        },
    };
    // Session construction (O(n) scratch) stays outside the timed region
    // so the reported time measures the query alone, on both paths. With
    // --engine index|auto the run goes through a fresh contribution
    // table: a one-shot query is always a build-through, so the reported
    // cost is the honest cold-index cost (replays show up in `batch`,
    // where one table serves the whole node list).
    fn timed_run<G: GraphView + Sync>(
        mut session: QuerySession<G>,
        query: Query,
        choice: EngineChoice,
    ) -> (Result<QueryOutput, QueryError>, f64) {
        let start = std::time::Instant::now();
        let output = match choice {
            EngineChoice::Probesim => session.run(query),
            EngineChoice::Index | EngineChoice::Auto => {
                IndexEngine::new().run(&mut session, 0, query, ProbeBudget::unlimited())
            }
        };
        (output, start.elapsed().as_secs_f64())
    }
    // Invalid input (out-of-range node, k = 0, bad tau) surfaces here as a
    // typed QueryError rather than a panic. With --store the session owns
    // a version-pinned snapshot (same answers, serving configuration).
    let (result, elapsed) = if has_flag(args, "--store") {
        let store = probesim_graph::GraphStore::from_csr(graph);
        timed_run(engine.session(store.snapshot()), query, engine_choice)
    } else {
        timed_run(engine.session(&graph), query, engine_choice)
    };
    let output = result.map_err(|e| e.to_string())?;
    match format {
        OutputFormat::Json => println!("{}", query_output_json(&output, elapsed)),
        OutputFormat::Text => {
            let config = engine.config();
            match query {
                Query::TopK { k, .. } => println!(
                    "# top-{k} SimRank neighbors of node {node} (c={}, eps={}, delta={})",
                    config.decay, config.epsilon, config.delta
                ),
                Query::Threshold { tau, .. } => println!(
                    "# nodes with s > {tau} relative to node {node} (c={}, eps={}, delta={})",
                    config.decay, config.epsilon, config.delta
                ),
                Query::SingleSource { .. } => println!("# single-source scores of node {node}"),
            }
            for (rank, (v, score)) in output.ranking().iter().enumerate() {
                println!("{:>3}. node {:>8}  s = {:.5}", rank + 1, v, score);
            }
            eprintln!(
                "query time {elapsed:.3}s | {} walks, {} probes, {} edges expanded, {} nodes touched",
                output.stats.walks,
                output.stats.probes,
                output.stats.edges_expanded,
                output.scores.len()
            );
        }
    }
    Ok(())
}

fn batch(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("batch: missing graph file")?;
    let graph = load_graph(path)?;
    let nodes_raw = flag_str(args, "--nodes").ok_or("batch: --nodes is required")?;
    let k: usize = flag(args, "--top", 10)?;
    let threads: usize = flag(args, "--threads", 0)?;
    let format = output_format(args)?;
    let engine = engine_from_flags(args)?;
    let engine_choice = engine_choice_from_flags(args)?;
    let queries: Vec<Query> = nodes_raw
        .split(',')
        .map(|tok| {
            tok.trim()
                .parse::<NodeId>()
                .map(|node| Query::TopK { node, k })
                .map_err(|_| format!("batch: cannot parse node id {tok:?}"))
        })
        .collect::<Result<_, _>>()?;
    if has_flag(args, "--readers") && !has_flag(args, "--store") {
        return Err("batch: --readers only applies with --store (use --threads otherwise)".into());
    }
    // With --engine index|auto, one contribution table serves the whole
    // node list sequentially: the first visit to a source builds its
    // row, every repeat replays it (the stats JSON shows the split as
    // index_rows_stale vs index_rows_used). Answers are bit-identical
    // to the probesim path — the RNG is keyed by (seed, node) only.
    fn index_batch<G: GraphView + Sync>(
        mut session: QuerySession<G>,
        queries: &[Query],
    ) -> Result<BatchOutput, QueryError> {
        let mut index = IndexEngine::new();
        let mut outputs = Vec::with_capacity(queries.len());
        let mut stats = QueryStats::default();
        for &query in queries {
            let output = index.run(&mut session, 0, query, ProbeBudget::unlimited())?;
            stats.merge(&output.stats);
            outputs.push(output);
        }
        Ok(BatchOutput { outputs, stats })
    }
    let start = std::time::Instant::now();
    let batch = match engine_choice {
        EngineChoice::Probesim => {
            if has_flag(args, "--store") {
                // Snapshot-per-thread: each reader owns an Arc-cheap clone of
                // one published version; answers are bit-identical to the
                // shared-borrow path.
                let readers: usize = flag(args, "--readers", threads)?;
                let store = probesim_graph::GraphStore::from_csr(graph);
                engine.par_batch_owned(&store.snapshot(), &queries, readers)
            } else {
                engine.par_batch(&graph, &queries, threads)
            }
        }
        EngineChoice::Index | EngineChoice::Auto => {
            if has_flag(args, "--store") {
                let store = probesim_graph::GraphStore::from_csr(graph);
                index_batch(engine.session(store.snapshot()), &queries)
            } else {
                index_batch(engine.session(&graph), &queries)
            }
        }
    }
    .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64();
    match format {
        OutputFormat::Json => {
            let per_query: Vec<String> = batch
                .outputs
                .iter()
                .map(|o| query_output_json(o, f64::NAN))
                .collect();
            println!(
                "{{\"queries\": {}, \"elapsed_secs\": {}, \"stats\": {}, \"outputs\": [{}]}}",
                batch.outputs.len(),
                json_f64(elapsed),
                stats_json(&batch.stats),
                per_query.join(", ")
            );
        }
        OutputFormat::Text => {
            for output in &batch.outputs {
                println!("# node {}", output.scores.query());
                for (rank, (v, score)) in output.ranking().iter().enumerate() {
                    println!("{:>3}. node {:>8}  s = {:.5}", rank + 1, v, score);
                }
            }
            eprintln!(
                "batch of {} queries in {elapsed:.3}s | {} walks, {} probes total",
                batch.outputs.len(),
                batch.stats.walks,
                batch.stats.probes
            );
        }
    }
    Ok(())
}

/// `splitmix64` — a tiny deterministic PRNG so the Zipf-repeated query
/// stream needs no RNG dependency in the binary.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Nearest-rank quantile of an unsorted sample set (local helper — the
/// binary does not depend on the bench crate).
fn quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("latencies are never NaN"));
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

fn latency_json(samples: &[f64]) -> String {
    format!(
        "{{\"count\": {}, \"median\": {}, \"p95\": {}, \"max\": {}}}",
        samples.len(),
        json_f64(quantile(samples, 0.5)),
        json_f64(quantile(samples, 0.95)),
        json_f64(samples.iter().copied().fold(0.0, f64::max)),
    )
}

/// Drives the full serving facade over a Zipf-repeated query stream and
/// prints the queue/exec/cache breakdown as one JSON object.
fn serve_bench(args: &[String]) -> Result<(), String> {
    use probesim::fleet::Fleet;
    use probesim::prelude::{Commit, Consistency, Request, ServiceBuilder};
    use probesim::service::{QueryService, Response};
    use probesim_graph::GraphUpdate;

    /// The serving backend behind the stream: one `QueryService`, or —
    /// with `--replicas` — the replicated fleet behind its router.
    enum Serving {
        Single(QueryService),
        Fleet(Fleet),
    }

    impl Serving {
        fn commit(&self, update: GraphUpdate) -> Commit {
            match self {
                Serving::Single(service) => service.commit(update),
                Serving::Fleet(fleet) => fleet.commit(update),
            }
        }

        /// Dispatches one request; the error detail is discarded (the
        /// stream only counts errors).
        fn call(&self, request: Request) -> Result<Response, String> {
            match self {
                Serving::Single(service) => service.call(request).map_err(|e| e.to_string()),
                Serving::Fleet(fleet) => fleet.call(request).map_err(|e| e.to_string()),
            }
        }

        /// The writable endpoint (the single service, or the fleet's
        /// primary) — the source of version / stats / worker counts.
        fn primary(&self) -> &QueryService {
            match self {
                Serving::Single(service) => service,
                Serving::Fleet(fleet) => fleet.primary(),
            }
        }
    }

    let path = args.first().ok_or("serve-bench: missing graph file")?;
    let graph = load_graph(path)?;
    let queries: usize = flag(args, "--queries", 64)?;
    let distinct: usize = flag(args, "--distinct", 16)?;
    let workers: usize = flag(args, "--workers", 0)?;
    let cache_capacity: usize = flag(args, "--cache-capacity", 1024)?;
    let update_every: usize = flag(args, "--update-every", 0)?;
    let replicas: usize = flag(args, "--replicas", 0)?;
    let seed: u64 = flag(args, "--seed", 2017)?;
    let deadline_ms: Option<u64> = flag_str(args, "--deadline-ms")
        .map(|raw| {
            raw.parse()
                .map_err(|_| "cannot parse value for --deadline-ms".to_string())
        })
        .transpose()?;
    let work_cap: Option<u64> = flag_str(args, "--work-cap")
        .map(|raw| {
            raw.parse()
                .map_err(|_| "cannot parse value for --work-cap".to_string())
        })
        .transpose()?;
    let consistency_name = flag_str(args, "--consistency").unwrap_or("latest");
    let engine = engine_from_flags(args)?;
    let engine_choice = engine_choice_from_flags(args)?;
    let n = graph.num_nodes();
    if n == 0 {
        return Err("serve-bench: graph has no nodes".into());
    }

    let query_nodes = probesim_eval::sample_query_nodes(&graph, distinct.max(1), seed);
    let serving = if replicas > 0 {
        let mut builder = Fleet::builder(engine.config().clone())
            .replicas(replicas)
            .workers(workers)
            .cache_capacity(cache_capacity);
        if let Some(ms) = deadline_ms {
            builder = builder.default_deadline(std::time::Duration::from_millis(ms));
        }
        Serving::Fleet(builder.build(graph))
    } else {
        let mut builder = ServiceBuilder::new(engine.config().clone())
            .workers(workers)
            .cache_capacity(cache_capacity);
        if let Some(ms) = deadline_ms {
            builder = builder.default_deadline(std::time::Duration::from_millis(ms));
        }
        Serving::Single(builder.build(probesim_graph::GraphStore::from_csr(graph)))
    };
    // The shared wire form (the same `FromStr` the fleet config and
    // bench clients use): bare "pinned"/"at-least" resolve to version
    // 0, which IS the stream-start version of a freshly built store.
    let base_consistency: Consistency = consistency_name
        .parse()
        .map_err(|e| format!("--consistency: {e}"))?;

    // Zipf-ish repetition, deterministic in seed (the shared sampler
    // the cache-repeat bench scenario uses; the draws come from the
    // dependency-free splitmix64 above).
    let zipf = probesim_eval::ZipfRanks::new(query_nodes.len());
    let mut prng = seed ^ 0x5EED;
    let mut queue_secs = Vec::with_capacity(queries);
    let mut exec_secs = Vec::with_capacity(queries);
    let mut hits = 0u64;
    let mut errors = 0u64;
    let mut read_your_writes = 0u64;
    let mut answered_by_probesim = 0u64;
    let mut answered_by_index = 0u64;
    let mut last_commit: Option<u64> = None;
    let wall = std::time::Instant::now();
    for i in 0..queries {
        if update_every > 0 && i > 0 && i % update_every == 0 {
            // A random structural update: insert or remove a random edge
            // (whichever is effective first keeps the stream simple).
            let u = (splitmix64(&mut prng) % n as u64) as NodeId;
            let v = (splitmix64(&mut prng) % n as u64) as NodeId;
            if u != v {
                let mut commit = serving.commit(GraphUpdate::Insert { u, v });
                if !commit.was_effective() {
                    commit = serving.commit(GraphUpdate::Remove { u, v });
                }
                // The commit token is the exact floor the chasing
                // read must observe.
                last_commit = Some(commit.version);
            }
        }
        // Read-your-writes: the query right after a commit is floored
        // at that commit's own token; the rest of the stream uses the
        // requested base consistency.
        let consistency = match last_commit.take() {
            Some(version) => {
                read_your_writes += 1;
                Consistency::AtLeastVersion(version)
            }
            None => base_consistency,
        };
        let rank = zipf.rank(splitmix64(&mut prng) as f64 / u64::MAX as f64);
        let mut request = Request::new(Query::SingleSource {
            node: query_nodes[rank],
        })
        .with_consistency(consistency)
        .with_engine(engine_choice);
        if let Some(cap) = work_cap {
            request = request.with_work_cap(cap);
        }
        match serving.call(request) {
            Ok(response) => {
                queue_secs.push(response.queue_wait.as_secs_f64());
                exec_secs.push(response.exec_time.as_secs_f64());
                if response.cache_hit {
                    hits += 1;
                }
                // Provenance tally: which engine actually answered —
                // under `auto` the planner decides per query, so the
                // split is the planner's observable behavior.
                match response.engine {
                    EngineKind::Probesim => answered_by_probesim += 1,
                    EngineKind::Index => answered_by_index += 1,
                }
            }
            Err(_) => errors += 1,
        }
    }
    let elapsed = wall.elapsed().as_secs_f64();
    let stats = serving.primary().stats();
    let answered = queries as u64 - errors;
    // Fleet mode appends a `fleet` object: per-endpoint health,
    // restart counts and last-salvage LSNs from the registry-backed
    // status snapshot, plus the supervisor's cumulative recovery
    // counters and the router's failover count.
    let fleet_field = match &serving {
        Serving::Single(_) => String::new(),
        Serving::Fleet(fleet) => {
            let supervisor = fleet.supervisor_stats();
            let endpoints: Vec<String> = fleet
                .status()
                .iter()
                .map(|s| {
                    format!(
                        "{{\"replica\": {}, \"applied_version\": {}, \"queue_depth\": {}, \
                         \"oldest_retained\": {}, \"health\": \"{}\", \"restarts\": {}, \
                         \"last_salvage_lsn\": {}}}",
                        s.replica,
                        s.applied_version,
                        s.queue_depth,
                        s.oldest_retained,
                        s.health,
                        s.restarts,
                        s.last_salvage_lsn
                            .map_or("null".to_string(), |lsn| lsn.to_string()),
                    )
                })
                .collect();
            format!(
                ", \"fleet\": {{\"replicas\": {replicas}, \"failovers\": {}, \
                 \"checkpoints_taken\": {}, \"checkpoint_recoveries\": {}, \
                 \"genesis_recoveries\": {}, \"endpoints\": [{}]}}",
                fleet.failovers(),
                supervisor.checkpoints_taken,
                supervisor.checkpoint_recoveries,
                supervisor.genesis_recoveries,
                endpoints.join(", "),
            )
        }
    };
    println!(
        "{{\"queries\": {queries}, \"distinct\": {}, \"workers\": {}, \
         \"consistency\": \"{consistency_name}\", \"deadline_ms\": {}, \"work_cap\": {}, \
         \"engine\": {{\"requested\": \"{engine_choice}\", \"answered_by\": \
         {{\"probesim\": {answered_by_probesim}, \"index\": {answered_by_index}}}}}, \
         \"version\": {}, \"applied_version\": {}, \"queue_depth\": {}, \
         \"read_your_writes\": {read_your_writes}, \"elapsed_secs\": {}, \
         \"cache\": {{\"capacity\": {cache_capacity}, \"hits\": {hits}, \
         \"misses\": {}, \"hit_rate\": {}, \"entries\": {}}}, \
         \"deadline_exceeded\": {}, \"work_budget_exceeded\": {}, \"errors\": {errors}, \
         \"executed_work\": {}, \
         \"queue_secs\": {}, \"exec_secs\": {}{fleet_field}}}",
        query_nodes.len(),
        serving.primary().workers(),
        deadline_ms.map_or("null".to_string(), |ms| ms.to_string()),
        work_cap.map_or("null".to_string(), |w| w.to_string()),
        serving.primary().version(),
        stats.applied_version,
        stats.queue_depth,
        json_f64(elapsed),
        answered - hits,
        json_f64(if answered > 0 {
            hits as f64 / answered as f64
        } else {
            0.0
        }),
        stats.cache_entries,
        stats.deadline_exceeded,
        stats.work_budget_exceeded,
        stats.executed_work,
        latency_json(&queue_secs),
        latency_json(&exec_secs),
    );
    Ok(())
}

fn pair(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("pair: missing graph file")?;
    let graph = load_graph(path)?;
    let u: NodeId = flag(args, "--u", NodeId::MAX)?;
    let v: NodeId = flag(args, "--v", NodeId::MAX)?;
    if u == NodeId::MAX || v == NodeId::MAX {
        return Err("pair: --u and --v are required".into());
    }
    let n = graph.num_nodes();
    if u as usize >= n || v as usize >= n {
        return Err(QueryError::NodeOutOfRange {
            node: u.max(v),
            num_nodes: n,
        }
        .to_string());
    }
    let walks: usize = flag(args, "--walks", 100_000)?;
    let decay: f64 = flag(args, "--decay", 0.6)?;
    let seed: u64 = flag(args, "--seed", 2017)?;
    let mc = MonteCarlo::new(decay, walks).with_seed(seed);
    let estimate = mc.pair(&graph, u, v);
    println!("s({u}, {v}) ≈ {estimate:.6}   ({walks} walk pairs, c = {decay})");
    Ok(())
}

/// Serializes one [`QueryOutput`] as a JSON object: query descriptor,
/// sparse scores (touched nodes only), ranked answer, and stats. Pass a
/// NaN `elapsed` to omit the timing field (batch mode times the batch).
fn query_output_json(output: &QueryOutput, elapsed: f64) -> String {
    let query_desc = match output.query {
        Query::SingleSource { node } => {
            format!("{{\"kind\": \"single_source\", \"node\": {node}}}")
        }
        Query::TopK { node, k } => format!("{{\"kind\": \"top_k\", \"node\": {node}, \"k\": {k}}}"),
        Query::Threshold { node, tau } => format!(
            "{{\"kind\": \"threshold\", \"node\": {node}, \"tau\": {}}}",
            json_f64(tau)
        ),
    };
    let scores: Vec<String> = output
        .scores
        .iter()
        .map(|(v, s)| format!("{{\"node\": {v}, \"score\": {}}}", json_f64(s)))
        .collect();
    let ranking: Vec<String> = output
        .ranking()
        .iter()
        .map(|&(v, s)| format!("{{\"node\": {v}, \"score\": {}}}", json_f64(s)))
        .collect();
    let elapsed_field = if elapsed.is_finite() {
        format!(", \"elapsed_secs\": {}", json_f64(elapsed))
    } else {
        String::new()
    };
    format!(
        "{{\"query\": {query_desc}, \"num_nodes\": {}, \"touched\": {}, \"baseline\": {}, \
         \"scores\": [{}], \"ranking\": [{}], \"stats\": {}{elapsed_field}}}",
        output.scores.num_nodes(),
        output.scores.len(),
        json_f64(output.scores.baseline()),
        scores.join(", "),
        ranking.join(", "),
        stats_json(&output.stats),
    )
}

fn stats_json(stats: &QueryStats) -> String {
    // Serialized off the named-field snapshot, so new counters flow into
    // the CLI JSON without touching this function.
    let fields: Vec<String> = stats
        .fields()
        .map(|(name, value)| format!("\"{name}\": {value}"))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

/// JSON-safe float formatting (`Display` for f64 round-trips and never
/// produces exponent-free non-JSON tokens for finite values).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let formatted = format!("{x}");
        // `1e-7`-style output is valid JSON; bare `inf`/`NaN` is not, but
        // finite guards above keep us here.
        formatted
    } else {
        "null".to_string()
    }
}
