//! `probesim` — command-line SimRank queries over edge-list graphs.
//!
//! ```text
//! probesim generate <dataset> [--scale ci|laptop] [--out graph.psim]
//! probesim stats    <graph-file>
//! probesim query    <graph-file> --node N [--top K] [--eps E] [--delta D] [--decay C]
//! probesim pair     <graph-file> --u A --v B [--walks R] [--decay C]
//! ```
//!
//! Graph files are either the text edge-list format (`u v` per line, `#`
//! comments — the format of the paper's SNAP datasets) or this crate's
//! binary format (written by `generate --out file.psim`); the magic bytes
//! decide.

use std::process::ExitCode;

use probesim::prelude::*;
use probesim_baselines::MonteCarlo;
use probesim_graph::{io, CsrGraph, DegreeStats};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  probesim generate <dataset> [--scale ci|laptop] [--out FILE]
  probesim stats    <graph-file>
  probesim query    <graph-file> --node N [--top K] [--eps E] [--delta D] [--decay C] [--seed S]
  probesim pair     <graph-file> --u A --v B [--walks R] [--decay C] [--seed S]

datasets: Wiki-Vote HepTh AS HepPh LiveJournal IT-2004 Twitter Friendster";

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    let rest = &args[1..];
    match command.as_str() {
        "generate" => generate(rest),
        "stats" => stats(rest),
        "query" => query(rest),
        "pair" => pair(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Fetches the value after a `--flag`, parsed, or the default.
fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{name} expects a value"))?
            .parse()
            .map_err(|_| format!("cannot parse value for {name}")),
    }
}

fn flag_str<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    // Try the binary magic first, fall back to text.
    match io::read_binary_file(path) {
        Ok(g) => Ok(g),
        Err(_) => io::read_edge_list_file(path)
            .map(|(g, _labels)| g)
            .map_err(|e| format!("cannot read {path}: {e}")),
    }
}

fn generate(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("generate: missing dataset name")?;
    let dataset = Dataset::parse(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let scale = match flag_str(args, "--scale").unwrap_or("ci") {
        "ci" => Scale::Ci,
        "laptop" => Scale::Laptop,
        other => return Err(format!("--scale expects ci|laptop, got {other:?}")),
    };
    let graph = dataset.generate(scale);
    let stats = DegreeStats::compute(&graph);
    eprintln!(
        "generated {}: n={} m={} mean_deg={:.1}",
        dataset.name(),
        graph.num_nodes(),
        graph.num_edges(),
        stats.mean_degree
    );
    match flag_str(args, "--out") {
        Some(path) if path.ends_with(".psim") => {
            io::write_binary_file(path, &graph).map_err(|e| e.to_string())?;
            eprintln!("wrote binary graph to {path}");
        }
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
            io::write_edge_list_text(std::io::BufWriter::new(file), &graph)
                .map_err(|e| e.to_string())?;
            eprintln!("wrote text edge list to {path}");
        }
        None => {
            io::write_edge_list_text(std::io::stdout().lock(), &graph)
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats: missing graph file")?;
    let graph = load_graph(path)?;
    let s = DegreeStats::compute(&graph);
    println!("nodes            {}", s.num_nodes);
    println!("edges            {}", s.num_edges);
    println!("mean degree      {:.2}", s.mean_degree);
    println!("max in-degree    {}", s.max_in_degree);
    println!("max out-degree   {}", s.max_out_degree);
    println!(
        "zero in-degree   {} ({:.1}%)",
        s.zero_in_degree,
        100.0 * s.zero_in_degree as f64 / s.num_nodes.max(1) as f64
    );
    println!("in-degree gini   {:.3}", s.in_degree_gini);
    println!(
        "query-eligible   {:.1}%",
        100.0 * s.query_eligible_fraction()
    );
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("query: missing graph file")?;
    let graph = load_graph(path)?;
    let node: NodeId = flag(args, "--node", NodeId::MAX)?;
    if node == NodeId::MAX {
        return Err("query: --node is required".into());
    }
    if node as usize >= graph.num_nodes() {
        return Err(format!(
            "node {node} out of range (n = {})",
            graph.num_nodes()
        ));
    }
    let k: usize = flag(args, "--top", 10)?;
    let eps: f64 = flag(args, "--eps", 0.05)?;
    let delta: f64 = flag(args, "--delta", 0.01)?;
    let decay: f64 = flag(args, "--decay", 0.6)?;
    let seed: u64 = flag(args, "--seed", 2017)?;
    let engine = ProbeSim::new(ProbeSimConfig::new(decay, eps, delta).with_seed(seed));
    let start = std::time::Instant::now();
    let result = engine.single_source(&graph, node);
    let elapsed = start.elapsed().as_secs_f64();
    println!("# top-{k} SimRank neighbors of node {node} (c={decay}, eps={eps}, delta={delta})");
    for (rank, (v, score)) in result.top_k(k).iter().enumerate() {
        println!("{:>3}. node {:>8}  s = {:.5}", rank + 1, v, score);
    }
    eprintln!(
        "query time {elapsed:.3}s | {} walks, {} probes, {} edges expanded",
        result.stats.walks, result.stats.probes, result.stats.edges_expanded
    );
    Ok(())
}

fn pair(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("pair: missing graph file")?;
    let graph = load_graph(path)?;
    let u: NodeId = flag(args, "--u", NodeId::MAX)?;
    let v: NodeId = flag(args, "--v", NodeId::MAX)?;
    if u == NodeId::MAX || v == NodeId::MAX {
        return Err("pair: --u and --v are required".into());
    }
    let n = graph.num_nodes();
    if u as usize >= n || v as usize >= n {
        return Err(format!("node out of range (n = {n})"));
    }
    let walks: usize = flag(args, "--walks", 100_000)?;
    let decay: f64 = flag(args, "--decay", 0.6)?;
    let seed: u64 = flag(args, "--seed", 2017)?;
    let mc = MonteCarlo::new(decay, walks).with_seed(seed);
    let estimate = mc.pair(&graph, u, v);
    println!("s({u}, {v}) ≈ {estimate:.6}   ({walks} walk pairs, c = {decay})");
    Ok(())
}
