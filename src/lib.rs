#![warn(missing_docs)]
//! # probesim
//!
//! A complete Rust implementation of **ProbeSim** (Liu, Zheng, He, Wei,
//! Xiao, Zheng, Lu — *Scalable Single-Source and Top-k SimRank Computations
//! on Dynamic Graphs*, PVLDB 11(1), 2017), together with every substrate
//! and baseline its evaluation depends on.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`graph`] — CSR + dynamic graph substrate ([`probesim_graph`])
//! * [`datasets`] — synthetic workload generators ([`probesim_datasets`])
//! * [`core`] — the ProbeSim algorithm and its session-based query API
//!   ([`probesim_core`])
//! * [`baselines`] — Power Method, Monte Carlo, TSF, TopSim family
//!   ([`probesim_baselines`])
//! * [`eval`] — metrics, ground truth, pooling ([`probesim_eval`])
//! * [`service`] — the serving facade: `QueryService` with deadlines,
//!   consistency levels and a version-keyed result cache
//!   ([`probesim_service`])
//! * [`fleet`] — the replicated serving fleet: a durable update log,
//!   log-tailing replicas and a consistency-aware router behind one
//!   `Fleet` handle, fault-tolerant via checkpointed crash recovery,
//!   log salvage, seeded fault injection and a supervising respawn
//!   loop ([`probesim_fleet`])
//!
//! ## Quick start
//!
//! Queries run through a [`QuerySession`](prelude::QuerySession): a
//! reusable, graph-bound context owning all scratch memory, returning
//! sparse `O(touched)` results and typed errors.
//!
//! ```
//! use probesim::prelude::*;
//!
//! // A small "who-follows-whom" graph.
//! let graph = GraphBuilder::new(5)
//!     .extend_edges(vec![(1, 0), (2, 0), (1, 3), (2, 3), (4, 1)])
//!     .build_csr();
//!
//! // Index-free single-source SimRank with |error| <= 0.05 w.p. 0.99.
//! let engine = ProbeSim::new(ProbeSimConfig::new(0.6, 0.05, 0.01));
//! let mut session = engine.session(&graph);
//!
//! // Nodes 0 and 3 share both in-neighbors => strongly similar
//! // (exact value c/2 = 0.3 here, since the shared parents are
//! // themselves dissimilar).
//! let result = session.run(Query::SingleSource { node: 0 })?;
//! assert!(result.scores.score(3) > 0.2);
//! assert!(result.scores.len() < graph.num_nodes()); // sparse: touched only
//!
//! // The same session answers more queries with zero reallocation.
//! let top = session.run(Query::TopK { node: 0, k: 1 })?;
//! assert_eq!(top.ranking()[0].0, 3);
//!
//! // Invalid input is an error value, not a panic.
//! assert!(matches!(
//!     session.run(Query::SingleSource { node: 99 }),
//!     Err(QueryError::NodeOutOfRange { node: 99, .. })
//! ));
//!
//! // Batches shard across per-thread sessions, outputs in input order.
//! let queries: Vec<Query> = (0..5).map(|v| Query::SingleSource { node: v }).collect();
//! let batch = engine.par_batch(&graph, &queries, 2)?;
//! assert_eq!(batch.outputs.len(), 5);
//! # Ok::<(), probesim::prelude::QueryError>(())
//! ```
//!
//! The one-shot wrappers `engine.single_source(&graph, u)` /
//! `engine.top_k(&graph, u, k)` remain for quick experiments and return
//! the legacy dense [`SingleSourceResult`](prelude::SingleSourceResult)
//! view.
//!
//! See `examples/` for runnable scenarios (recommendations, dynamic
//! streams, web-scale pooling) and `crates/bench` for the binaries that
//! regenerate every table and figure of the paper.

pub use probesim_baselines as baselines;
pub use probesim_core as core;
pub use probesim_datasets as datasets;
pub use probesim_eval as eval;
pub use probesim_fleet as fleet;
pub use probesim_graph as graph;
pub use probesim_service as service;

/// One-stop imports for applications.
pub mod prelude {
    pub use probesim_baselines::{
        MonteCarlo, PowerMethod, TopSim, TopSimConfig, TopSimVariant, Tsf, TsfConfig,
    };
    pub use probesim_core::{
        BatchOutput, EngineChoice, EngineKind, IndexEngine, Optimizations, ProbeBudget, ProbeSim,
        ProbeSimConfig, ProbeStrategy, Query, QueryError, QueryOutput, QuerySession, QueryStats,
        SingleSourceResult, SparseScores,
    };
    pub use probesim_datasets::{Dataset, Scale};
    pub use probesim_eval::{GroundTruth, Pool, SimRankAlgorithm};
    pub use probesim_fleet::{
        FaultPlan, Fleet, FleetBuilder, FleetError, LogCursor, LogRecord, ReplicaHealth,
        ReplicaRegistry, ReplicaStatus, SupervisorStats, UpdateLog,
    };
    pub use probesim_graph::{
        Commit, CompactionPolicy, CsrGraph, DynamicGraph, GraphBuilder, GraphSnapshot, GraphStore,
        GraphUpdate, GraphView, NodeId,
    };
    pub use probesim_service::{
        Consistency, Priority, Request, Response, ServiceBuilder, ServiceError, ServiceStats,
    };
}
