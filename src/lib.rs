#![warn(missing_docs)]
//! # probesim
//!
//! A complete Rust implementation of **ProbeSim** (Liu, Zheng, He, Wei,
//! Xiao, Zheng, Lu — *Scalable Single-Source and Top-k SimRank Computations
//! on Dynamic Graphs*, PVLDB 11(1), 2017), together with every substrate
//! and baseline its evaluation depends on.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`graph`] — CSR + dynamic graph substrate ([`probesim_graph`])
//! * [`datasets`] — synthetic workload generators ([`probesim_datasets`])
//! * [`core`] — the ProbeSim algorithm ([`probesim_core`])
//! * [`baselines`] — Power Method, Monte Carlo, TSF, TopSim family
//!   ([`probesim_baselines`])
//! * [`eval`] — metrics, ground truth, pooling ([`probesim_eval`])
//!
//! ## Quick start
//!
//! ```
//! use probesim::prelude::*;
//!
//! // A small "who-follows-whom" graph.
//! let graph = GraphBuilder::new(5)
//!     .extend_edges(vec![(1, 0), (2, 0), (1, 3), (2, 3), (4, 1)])
//!     .build_csr();
//!
//! // Index-free single-source SimRank with |error| <= 0.05 w.p. 0.99.
//! let engine = ProbeSim::new(ProbeSimConfig::new(0.6, 0.05, 0.01));
//! let result = engine.single_source(&graph, 0);
//!
//! // Nodes 0 and 3 share both in-neighbors => strongly similar
//! // (exact value c/2 = 0.3 here, since the shared parents are
//! // themselves dissimilar).
//! assert!(result.score(3) > 0.2);
//! let top = engine.top_k(&graph, 0, 1);
//! assert_eq!(top[0].0, 3);
//! ```
//!
//! See `examples/` for runnable scenarios (recommendations, dynamic
//! streams, web-scale pooling) and `crates/bench` for the binaries that
//! regenerate every table and figure of the paper.

pub use probesim_baselines as baselines;
pub use probesim_core as core;
pub use probesim_datasets as datasets;
pub use probesim_eval as eval;
pub use probesim_graph as graph;

/// One-stop imports for applications.
pub mod prelude {
    pub use probesim_baselines::{
        MonteCarlo, PowerMethod, TopSim, TopSimConfig, TopSimVariant, Tsf, TsfConfig,
    };
    pub use probesim_core::{
        Optimizations, ProbeSim, ProbeSimConfig, ProbeStrategy, QueryStats, SingleSourceResult,
    };
    pub use probesim_datasets::{Dataset, Scale};
    pub use probesim_eval::{GroundTruth, Pool, SimRankAlgorithm};
    pub use probesim_graph::{CsrGraph, DynamicGraph, GraphBuilder, GraphView, NodeId};
}
